package resinfer_test

// Steady-state serving benchmarks for the pooled, contiguous-storage
// search path. The acceptance bar for the zero-alloc work is
// BenchmarkSearchIntoSteadyState* reporting 0 allocs/op: after Enable,
// a search that reuses its destination slice draws every piece of
// per-query state (evaluator, rotated-query and suffix scratch, traversal
// queues, visited marks) from pools.
//
// Run with: go test -bench=SearchInto -benchmem .

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/raceguard"
)

var (
	benchOnce sync.Once
	benchErr  error
	benchIdx  map[resinfer.IndexKind]*resinfer.Index
	benchQs   [][]float32
)

const (
	benchN   = 6000
	benchDim = 64
	benchK   = 10
)

func benchSetup(b testing.TB) {
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		data := make([][]float32, benchN)
		for i := range data {
			row := make([]float32, benchDim)
			for j := range row {
				row[j] = float32(rng.NormFloat64())
			}
			data[i] = row
		}
		benchQs = make([][]float32, 32)
		for i := range benchQs {
			q := make([]float32, benchDim)
			for j := range q {
				q[j] = float32(rng.NormFloat64())
			}
			benchQs[i] = q
		}
		benchIdx = map[resinfer.IndexKind]*resinfer.Index{}
		for _, kind := range []resinfer.IndexKind{resinfer.Flat, resinfer.HNSW, resinfer.IVF} {
			ix, err := resinfer.New(data, kind, &resinfer.Options{Seed: 1})
			if err != nil {
				benchErr = err
				return
			}
			if err := ix.Enable(resinfer.DDCRes, nil); err != nil {
				benchErr = err
				return
			}
			benchIdx[kind] = ix
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
}

func benchSearchInto(b *testing.B, kind resinfer.IndexKind, mode resinfer.Mode) {
	benchSetup(b)
	ix := benchIdx[kind]
	var dst []resinfer.Neighbor
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, err = ix.SearchInto(dst[:0], benchQs[i%len(benchQs)], benchK, mode, 80)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchIntoSteadyStateFlatExact must report 0 allocs/op: the
// flat-scan serving path with a reused destination slice.
func BenchmarkSearchIntoSteadyStateFlatExact(b *testing.B) {
	benchSearchInto(b, resinfer.Flat, resinfer.Exact)
}

// BenchmarkSearchIntoSteadyStateFlatDDCRes must report 0 allocs/op: the
// pooled DDCres evaluator (rotated query, σ suffix table) is reused.
func BenchmarkSearchIntoSteadyStateFlatDDCRes(b *testing.B) {
	benchSearchInto(b, resinfer.Flat, resinfer.DDCRes)
}

// BenchmarkSearchIntoSteadyStateHNSWDDCRes must report 0 allocs/op: graph
// traversal scratch (visited epochs, candidate and result queues) is
// pooled alongside the evaluator.
func BenchmarkSearchIntoSteadyStateHNSWDDCRes(b *testing.B) {
	benchSearchInto(b, resinfer.HNSW, resinfer.DDCRes)
}

// BenchmarkSearchIntoSteadyStateIVFDDCRes must report 0 allocs/op: probe
// selection scratch is pooled alongside the evaluator.
func BenchmarkSearchIntoSteadyStateIVFDDCRes(b *testing.B) {
	benchSearchInto(b, resinfer.IVF, resinfer.DDCRes)
}

// BenchmarkSearchAllocating is the same HNSW+DDCRes query through the
// plain Search API, which allocates only the caller-visible result slice.
func BenchmarkSearchAllocating(b *testing.B) {
	benchSetup(b)
	ix := benchIdx[resinfer.HNSW]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(benchQs[i%len(benchQs)], benchK, resinfer.DDCRes, 80); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchBatchPooled exercises the one-evaluator-per-worker batch
// path end to end.
func BenchmarkSearchBatchPooled(b *testing.B) {
	benchSetup(b)
	ix := benchIdx[resinfer.HNSW]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ix.SearchBatch(benchQs, benchK, resinfer.DDCRes, 80, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range out {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// shardedObsSetup builds a 4-shard index with per-shard metrics
// observation installed — the exact serving configuration of
// internal/server with /metrics enabled and tracing off. SearchWorkers
// is 1 because the sequential fan-out is the allocation-free path
// (parallel fan-out allocates its semaphore and goroutines per query).
func shardedObsSetup(b testing.TB) (*resinfer.ShardedIndex, func()) {
	benchSetup(b)
	rng := rand.New(rand.NewSource(7))
	data := make([][]float32, benchN)
	for i := range data {
		row := make([]float32, benchDim)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		data[i] = row
	}
	sx, err := resinfer.NewSharded(data, resinfer.Flat, 4,
		&resinfer.ShardOptions{SearchWorkers: 1, Index: &resinfer.Options{Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	if err := sx.Enable(resinfer.DDCRes, nil); err != nil {
		b.Fatal(err)
	}
	var observed atomic.Int64
	sx.SetShardObserver(func(shard int, d time.Duration, st resinfer.SearchStats) {
		observed.Add(1)
	})
	return sx, func() {
		if observed.Load() == 0 {
			b.Fatal("shard observer never fired: the benchmark is not measuring the metrics-on path")
		}
	}
}

// BenchmarkSearchIntoSteadyStateShardedMetricsOn is the observability
// regression guard: per-shard metrics observation on the untraced
// sharded hot path must stay 0 allocs/op — the observer is a plain
// function call into lock-free histogram/counter atomics.
func BenchmarkSearchIntoSteadyStateShardedMetricsOn(b *testing.B) {
	sx, verify := shardedObsSetup(b)
	var dst []resinfer.Neighbor
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _, err = sx.SearchInto(dst[:0], benchQs[i%len(benchQs)], benchK, resinfer.DDCRes, 80)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	verify()
}

// TestSearchIntoShardedMetricsOnZeroAlloc enforces the same bar in the
// plain test suite (and under CI), without needing -bench: with a shard
// observer installed and no trace attached, steady-state sharded search
// performs zero heap allocations per query.
func TestSearchIntoShardedMetricsOnZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if raceguard.Enabled {
		t.Skip("race-detector instrumentation allocates")
	}
	sx, _ := shardedObsSetup(t)
	var dst []resinfer.Neighbor
	// Warm the pools before measuring.
	for i := 0; i < 8; i++ {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], benchQs[i%len(benchQs)], benchK, resinfer.DDCRes, 80)
		if err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], benchQs[i%len(benchQs)], benchK, resinfer.DDCRes, 80)
		i++
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sharded search with metrics on: %v allocs/op, want 0", allocs)
	}
}

// TestSearchIntoShardedHedgerInstalledZeroAlloc extends the bar to
// replicated serving: with a shard hedger armed (as every replica in a
// replication topology runs), the untraced, unhedged steady-state path
// must still perform zero heap allocations per query. Hedging machinery
// only engages on the deadline-aware path, so arming it must cost the
// plain path nothing.
func TestSearchIntoShardedHedgerInstalledZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if raceguard.Enabled {
		t.Skip("race-detector instrumentation allocates")
	}
	sx, _ := shardedObsSetup(t)
	sx.SetShardHedger(func(ctx context.Context, shard int, q []float32, k int, mode resinfer.Mode, budget int) ([]resinfer.Neighbor, resinfer.SearchStats, error) {
		t.Error("hedger fired on the plain (non-ctx) search path")
		return nil, resinfer.SearchStats{}, nil
	}, time.Millisecond)
	var dst []resinfer.Neighbor
	for i := 0; i < 8; i++ {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], benchQs[i%len(benchQs)], benchK, resinfer.DDCRes, 80)
		if err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		dst, _, err = sx.SearchInto(dst[:0], benchQs[i%len(benchQs)], benchK, resinfer.DDCRes, 80)
		i++
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sharded search with hedger installed: %v allocs/op, want 0", allocs)
	}
}
