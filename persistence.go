package resinfer

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"resinfer/internal/adsampling"
	"resinfer/internal/core"
	"resinfer/internal/ddc"
	"resinfer/internal/flat"
	"resinfer/internal/hnsw"
	"resinfer/internal/ivf"
	"resinfer/internal/matrix"
	"resinfer/internal/metric"
	"resinfer/internal/persist"
	"resinfer/internal/store"
)

// Version 2 of the on-disk format stores vector payloads as flat
// row-major matrix blocks (store.Matrix) written in bulk, instead of
// per-row length-prefixed slices.
const (
	fileMagic = "RESINFER2"
	adsMagic  = "RIADS2"
)

// Save serializes the index — structure, vectors, and every enabled
// comparator — so a later Load skips both construction and training.
func (ix *Index) Save(w io.Writer) error {
	pw := persist.NewWriter(w)
	if err := ix.encode(pw); err != nil {
		return err
	}
	return pw.Flush()
}

// encode writes the index onto an existing persist stream. It is the
// codec-level half of Save, shared with the sharded container format,
// which embeds one index stream per shard.
func (ix *Index) encode(pw *persist.Writer) error {
	pw.Magic(fileMagic)
	pw.String(string(ix.kind))
	pw.String(string(ix.metric.kind))
	pw.Int(ix.userDim)
	if ix.metric.kind == InnerProduct {
		pw.F64(ix.metric.ip.MaxSq)
	}
	switch ix.kind {
	case HNSW:
		ix.hnswIdx.Encode(pw)
	case IVF:
		ix.ivfIdx.Encode(pw)
		// IVF does not embed the vectors; write them explicitly.
		ix.data.Encode(pw)
	case Flat:
		ix.data.Encode(pw)
	default:
		return fmt.Errorf("resinfer: cannot serialize index kind %q", ix.kind)
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	modes := make([]string, 0, len(ix.dcos))
	for m := range ix.dcos {
		if m != Exact { // Exact is rebuilt from the vectors
			modes = append(modes, string(m))
		}
	}
	sort.Strings(modes) // deterministic files
	pw.Int(len(modes))
	for _, ms := range modes {
		m := Mode(ms)
		pw.String(ms)
		switch m {
		case ADSampling:
			d := ix.dcos[m].(*adsampling.DCO)
			pw.Magic(adsMagic)
			// Tuning comes from the DCO itself, not ix.opts: Enable may
			// have trained it with per-call options.
			pw.F64(d.Epsilon0())
			pw.Int(d.DeltaD())
			d.Rotation().Encode(pw)
			d.Rotated().Encode(pw)
		case DDCRes:
			ix.dcos[m].(*ddc.Res).Encode(pw)
		case DDCPCA:
			ix.dcos[m].(*ddc.PCADCO).Encode(pw)
		case DDCOPQ:
			ix.dcos[m].(*ddc.OPQDCO).Encode(pw)
		default:
			return fmt.Errorf("resinfer: cannot serialize mode %s", m)
		}
	}
	return pw.Err()
}

// Load deserializes an index written by Save.
func Load(r io.Reader) (*Index, error) {
	return decodeIndex(persist.NewReader(r))
}

// decodeIndex reads one index stream from an existing persist reader. It
// is the codec-level half of Load, shared with the sharded container
// format.
func decodeIndex(pr *persist.Reader) (*Index, error) {
	pr.Magic(fileMagic)
	kind := IndexKind(pr.String())
	mk := MetricKind(pr.String())
	userDim := pr.Int()
	ms := &metricState{kind: mk}
	switch mk {
	case L2, Cosine:
	case InnerProduct:
		ms.ip = &metric.IPTransform{Dim: userDim, MaxSq: pr.F64()}
	default:
		if pr.Err() == nil {
			return nil, fmt.Errorf("resinfer: unknown metric %q in stream", mk)
		}
	}
	if err := pr.Err(); err != nil {
		return nil, err
	}
	ix := &Index{kind: kind, userDim: userDim, metric: ms,
		opts: (*Options)(nil).withDefaults(),
		dcos: map[Mode]core.DCO{}, pools: map[Mode]*sync.Pool{}}
	ix.opts.Metric = mk
	switch kind {
	case HNSW:
		idx, err := hnsw.Decode(pr)
		if err != nil {
			return nil, err
		}
		ix.hnswIdx = idx
		ix.data = idx.Data()
	case IVF:
		idx, err := ivf.Decode(pr)
		if err != nil {
			return nil, err
		}
		ix.ivfIdx = idx
		ix.data, err = store.Decode(pr)
		if err != nil {
			return nil, err
		}
	case Flat:
		var err error
		ix.data, err = store.Decode(pr)
		if err != nil {
			return nil, err
		}
		idx, err := flat.New(ix.data.Rows(), ix.data.Dim())
		if err != nil {
			return nil, err
		}
		ix.flatIdx = idx
	default:
		return nil, fmt.Errorf("resinfer: unknown index kind %q in stream", kind)
	}
	if ix.data == nil || ix.data.Rows() == 0 {
		return nil, errors.New("resinfer: stream carries no vectors")
	}
	ix.dim = ix.data.Dim()
	exact, err := core.NewExact(ix.data)
	if err != nil {
		return nil, err
	}
	ix.installDCO(Exact, exact)

	nModes := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if nModes < 0 || nModes > 16 {
		return nil, errors.New("resinfer: corrupt mode count")
	}
	for i := 0; i < nModes; i++ {
		m := Mode(pr.String())
		if err := pr.Err(); err != nil {
			return nil, err
		}
		var dco core.DCO
		switch m {
		case ADSampling:
			pr.Magic(adsMagic)
			eps := pr.F64()
			deltaD := pr.Int()
			rot, derr := matrix.Decode(pr)
			if derr != nil {
				return nil, derr
			}
			rotated, derr := store.Decode(pr)
			if derr != nil {
				return nil, derr
			}
			dco, err = adsampling.NewWithRotation(rotated, rot, adsampling.Config{
				Epsilon0: eps, DeltaD: deltaD,
			})
		case DDCRes:
			dco, err = ddc.DecodeRes(pr)
		case DDCPCA:
			dco, err = ddc.DecodePCA(pr)
		case DDCOPQ:
			dco, err = ddc.DecodeOPQ(pr, ix.data)
		default:
			return nil, fmt.Errorf("resinfer: unknown mode %q in stream", m)
		}
		if err != nil {
			return nil, err
		}
		if dco.Size() != ix.data.Rows() {
			return nil, fmt.Errorf("resinfer: mode %s covers %d points, index has %d",
				m, dco.Size(), ix.data.Rows())
		}
		ix.installDCO(m, dco)
	}
	return ix, nil
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ix.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads an index from a file written by SaveFile.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
