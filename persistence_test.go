package resinfer

import (
	"bytes"
	"path/filepath"
	"testing"
)

// buildRichIndex constructs an HNSW index with all five modes enabled.
func buildRichIndex(t testing.TB) (*Index, [][]float32) {
	ds, _ := apiFixtures(t)
	data := ds.Data[:1200]
	ix, err := New(data, HNSW, &Options{Seed: 11, HNSWEfConstruction: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(ADSampling, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableWithTraining(DDCPCA, ds.Train[:30], nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableWithTraining(DDCOPQ, ds.Train[:30], nil); err != nil {
		t.Fatal(err)
	}
	return ix, data
}

// sameResults asserts two indexes return identical neighbors for a query
// under every mode.
func sameResults(t *testing.T, a, b *Index, q []float32) {
	t.Helper()
	for _, mode := range []Mode{Exact, ADSampling, DDCRes, DDCPCA, DDCOPQ} {
		ra, err := a.Search(q, 10, mode, 40)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		rb, err := b.Search(q, 10, mode, 40)
		if err != nil {
			t.Fatalf("%s (loaded): %v", mode, err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("%s: result count %d vs %d", mode, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i].ID != rb[i].ID || ra[i].Distance != rb[i].Distance {
				t.Fatalf("%s: result %d differs: %+v vs %+v", mode, i, ra[i], rb[i])
			}
		}
	}
}

func TestSaveLoadHNSWRoundTrip(t *testing.T) {
	ix, _ := buildRichIndex(t)
	ds, _ := apiFixtures(t)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind() != HNSW || loaded.Len() != ix.Len() || loaded.Dim() != ix.Dim() {
		t.Fatal("loaded metadata mismatch")
	}
	if len(loaded.Modes()) != 5 {
		t.Fatalf("loaded modes = %v", loaded.Modes())
	}
	for _, q := range ds.Queries[:5] {
		sameResults(t, ix, loaded, q)
	}
}

func TestSaveLoadIVFRoundTrip(t *testing.T) {
	ds, _ := apiFixtures(t)
	data := ds.Data[:1500]
	ix, err := New(data, IVF, &Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind() != IVF {
		t.Fatal("kind")
	}
	for _, q := range ds.Queries[:5] {
		for _, mode := range []Mode{Exact, DDCRes} {
			ra, err := ix.Search(q, 10, mode, 8)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := loaded.Search(q, 10, mode, 8)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("%s: results differ after IVF round trip", mode)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:500], HNSW, &Options{Seed: 17, HNSWEfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.ri")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 500 {
		t.Fatal("length mismatch after file round trip")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.ri")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:300], HNSW, &Options{Seed: 19, HNSWEfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Wrong magic.
	bad := append([]byte("XXXXXXXXX"), good[9:]...)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncation at several points.
	for _, cut := range []int{10, len(good) / 2, len(good) - 5} {
		if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("expected truncation error at %d", cut)
		}
	}
}

func TestSaveDeterministic(t *testing.T) {
	ix, _ := buildRichIndex(t)
	var a, b bytes.Buffer
	if err := ix.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save must be deterministic for the same index")
	}
}

func TestSaveLoadSaveStable(t *testing.T) {
	// Saving a LOADED index must produce the same stream: the decode path
	// must retain the comparator tuning (notably ADSampling's epsilon and
	// DeltaD) instead of re-serializing zero options.
	ix, _ := buildRichIndex(t)
	var first bytes.Buffer
	if err := ix.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("save -> load -> save must reproduce the identical stream")
	}
	reloaded, err := Load(bytes.NewReader(second.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := apiFixtures(t)
	sameResults(t, loaded, reloaded, ds.Queries[0])
}

func TestSaveLoadPreservesADSamplingTuning(t *testing.T) {
	// Enable with per-call (non-default) ADSampling tuning: the stream
	// must record the comparator's effective parameters, not ix.opts.
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:800], Flat, &Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(ADSampling, &Options{Seed: 21, ADSEpsilon0: 5, DeltaD: 16}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range ds.Queries {
		a, sa, err := ix.SearchWithStats(q, 10, ADSampling, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, sb, err := loaded.SearchWithStats(q, 10, ADSampling, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("query %d: stats diverge after reload: %+v vs %+v", qi, sa, sb)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), second.Bytes()) {
		t.Fatal("re-saving a loaded index with custom ADSampling tuning must reproduce the stream")
	}
}
