//go:build !race

package resinfer_test

const raceEnabled = false
