//go:build race

package resinfer_test

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so strict allocs-per-op tests skip.
const raceEnabled = true
