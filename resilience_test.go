package resinfer_test

// Chaos tests for the deadline-aware sharded fan-out: injected stuck,
// failing and panicking shards must degrade a search to a partial
// result within the deadline instead of stalling or killing the
// process. All of these run under -race in CI's chaos leg.

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"resinfer"
	"resinfer/internal/fault"
)

func buildChaosSharded(t testing.TB, nShards int) *resinfer.ShardedIndex {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	data := make([][]float32, 4000)
	for i := range data {
		row := make([]float32, 32)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		data[i] = row
	}
	sx, err := resinfer.NewSharded(data, resinfer.Flat, nShards,
		&resinfer.ShardOptions{Index: &resinfer.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return sx
}

func chaosQuery() []float32 {
	q := make([]float32, 32)
	for j := range q {
		q[j] = 0.25
	}
	return q
}

// TestDeadlineFanOutStuckShard is the tentpole acceptance test: one
// shard stuck far past the request deadline must not stall the fan-out.
// The search returns within the deadline with the other shards' merged
// results, ShardsOK/ShardsFailed reporting the coverage.
func TestDeadlineFanOutStuckShard(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 1, Delay: 2 * time.Second,
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	ns, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 10, resinfer.Exact, 0, nil)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("partial search failed: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("fan-out stalled %v behind the stuck shard (deadline 100ms)", elapsed)
	}
	if st.ShardsOK != 3 || st.ShardsFailed != 1 {
		t.Fatalf("coverage = %d ok / %d failed, want 3/1", st.ShardsOK, st.ShardsFailed)
	}
	if len(ns) != 10 {
		t.Fatalf("partial search returned %d hits, want 10", len(ns))
	}
}

// TestDeadlineFanOutFailedShard: an erroring shard is skipped and
// counted, not fatal — and with no deadline pressure the query still
// completes promptly because the error returns immediately.
func TestDeadlineFanOutFailedShard(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 2, Err: errors.New("disk on fire"),
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ns, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 5, resinfer.Exact, 0, nil)
	if err != nil {
		t.Fatalf("partial search failed: %v", err)
	}
	if st.ShardsOK != 3 || st.ShardsFailed != 1 {
		t.Fatalf("coverage = %d ok / %d failed, want 3/1", st.ShardsOK, st.ShardsFailed)
	}
	if len(ns) != 5 {
		t.Fatalf("got %d hits, want 5", len(ns))
	}
}

// TestDeadlineFanOutPanicIsolation: a panicking shard becomes a
// per-shard error (partial result), never process death.
func TestDeadlineFanOutPanicIsolation(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 0, Panic: "shard exploded",
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 5, resinfer.Exact, 0, nil)
	if err != nil {
		t.Fatalf("panic escaped isolation: %v", err)
	}
	if st.ShardsOK != 3 || st.ShardsFailed != 1 {
		t.Fatalf("coverage = %d ok / %d failed, want 3/1", st.ShardsOK, st.ShardsFailed)
	}
}

// TestPanicIsolationWithoutCtx: the plain (nil-ctx) path also survives a
// panicking shard, reporting it as a regular shard error.
func TestPanicIsolationWithoutCtx(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 0, Panic: "shard exploded",
	})()

	_, err := sx.Search(chaosQuery(), 5, resinfer.Exact, 0)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want shard-panic error", err)
	}
}

// TestDeadlineFanOutAllShardsLost: when every shard misses the deadline
// the search reports the context error rather than a fabricated empty
// result.
func TestDeadlineFanOutAllShardsLost(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: fault.AnyArg, Delay: 2 * time.Second,
	})()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 5, resinfer.Exact, 0, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("all-lost fan-out did not return at the deadline")
	}
	if st.ShardsOK != 0 || st.ShardsFailed != 4 {
		t.Fatalf("coverage = %d ok / %d failed, want 0/4", st.ShardsOK, st.ShardsFailed)
	}
}

// TestDeadlineFanOutCleanPathUnchanged: with no faults armed the ctx
// path returns exactly the same answer as the plain path and reports
// full coverage.
func TestDeadlineFanOutCleanPathUnchanged(t *testing.T) {
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	q := chaosQuery()
	want, err := sx.Search(q, 10, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, st, err := sx.SearchWithStatsCtx(ctx, q, 10, resinfer.Exact, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsOK != 4 || st.ShardsFailed != 0 {
		t.Fatalf("coverage = %d ok / %d failed, want 4/0", st.ShardsOK, st.ShardsFailed)
	}
	if len(got) != len(want) {
		t.Fatalf("ctx path returned %d hits, plain path %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs: ctx %+v plain %+v", i, got[i], want[i])
		}
	}
}

// TestSearchBatchCtxPartial: the batched deadline path reports per-query
// partial coverage and abandoned batches fail fast once ctx expires.
func TestSearchBatchCtxPartial(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 3, Delay: 2 * time.Second,
	})()

	queries := make([][]float32, 8)
	for i := range queries {
		queries[i] = chaosQuery()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	out, err := sx.SearchBatchCtx(ctx, queries, 5, resinfer.Exact, 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("batch stalled behind the stuck shard")
	}
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("query %d failed: %v", i, r.Err)
		}
		if r.Stats.ShardsOK != 3 || r.Stats.ShardsFailed != 1 {
			t.Fatalf("query %d coverage = %d/%d, want 3/1", i, r.Stats.ShardsOK, r.Stats.ShardsFailed)
		}
	}
}

// TestDeadlineFanOutStragglerSafeReuse hammers the abandoned-straggler
// path: many sequential deadline-exceeding queries against a slow shard
// while other goroutines search normally — under -race this proves the
// abandoned scratch is never handed back to the pool while a straggler
// still owns it.
func TestDeadlineFanOutStragglerSafeReuse(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	sx := buildChaosSharded(t, 4)
	defer fault.Inject(fault.Injection{
		Site: fault.SiteShardSearch, Arg: 1, Delay: 30 * time.Millisecond,
	})()

	stop := make(chan struct{})
	go func() {
		// Concurrent full-deadline searches recycle pool scratch while the
		// short-deadline loop abandons stragglers.
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			sx.SearchWithStatsCtx(ctx, chaosQuery(), 5, resinfer.Exact, 0, nil)
			cancel()
		}
	}()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, st, err := sx.SearchWithStatsCtx(ctx, chaosQuery(), 5, resinfer.Exact, 0, nil)
		cancel()
		if err == nil && st.ShardsFailed == 0 {
			t.Fatalf("iteration %d: stuck shard reported healthy", i)
		}
	}
	close(stop)
}

// buildChaosMutable builds a small WAL-backed mutable index for the
// degraded-mode tests.
func buildChaosMutable(t testing.TB, walDir string) *resinfer.MutableIndex {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := make([][]float32, 400)
	for i := range data {
		row := make([]float32, 16)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		data[i] = row
	}
	mx, err := resinfer.NewMutable(data, resinfer.Flat, 2, &resinfer.MutableOptions{
		WALDir:             walDir,
		DisableAutoCompact: true,
		Index:              &resinfer.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mx
}

// TestDegradedOnPersistentFsyncFailure: a persistent injected fsync
// failure flips the index fail-stop read-only — mutations report
// ErrDegraded, searches keep serving — and ClearDegraded re-arms
// writes once the fault is gone, with every acknowledged mutation
// surviving a WAL recovery round-trip.
func TestDegradedOnPersistentFsyncFailure(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	dir := t.TempDir()
	mx := buildChaosMutable(t, dir)
	defer mx.Close()

	v := make([]float32, 16)
	v[0] = 1
	ackedID, err := mx.Add(v)
	if err != nil {
		t.Fatal(err)
	}

	disarm := fault.Inject(fault.Injection{Site: fault.SiteWALFsync, Err: errors.New("disk gone")})
	if _, err := mx.Add(v); !errors.Is(err, resinfer.ErrDegraded) {
		t.Fatalf("persistent fsync failure: got %v, want ErrDegraded", err)
	}
	if mx.Degraded() == nil {
		t.Fatal("index must report degraded")
	}
	// Later mutations are refused without touching the WAL again.
	before := fault.Hits(fault.SiteWALFsync)
	if _, err := mx.Upsert(9999, v); !errors.Is(err, resinfer.ErrDegraded) {
		t.Fatalf("mutation while degraded: got %v, want ErrDegraded", err)
	}
	if _, err := mx.Delete(ackedID); !errors.Is(err, resinfer.ErrDegraded) {
		t.Fatalf("delete while degraded: got %v, want ErrDegraded", err)
	}
	if got := fault.Hits(fault.SiteWALFsync); got != before {
		t.Fatalf("degraded mutations must not hit the WAL: %d extra hits", got-before)
	}

	// Searches are unaffected by degradation.
	ns, err := mx.Search(v, 5, resinfer.Exact, 0)
	if err != nil || len(ns) != 5 {
		t.Fatalf("search while degraded: %d hits, err %v", len(ns), err)
	}

	// Clearing while the fault persists re-arms, and the next mutation
	// degrades again.
	if err := mx.ClearDegraded(); err != nil {
		t.Fatalf("clear degraded: %v", err)
	}
	if _, err := mx.Add(v); !errors.Is(err, resinfer.ErrDegraded) {
		t.Fatalf("mutation with fault still armed: got %v, want ErrDegraded", err)
	}

	// Fault fixed: clear succeeds and writes flow again.
	disarm()
	if err := mx.ClearDegraded(); err != nil {
		t.Fatalf("clear degraded after fix: %v", err)
	}
	if mx.Degraded() != nil {
		t.Fatal("degraded state must clear")
	}
	v2 := make([]float32, 16)
	v2[1] = 2
	acked2, err := mx.Add(v2)
	if err != nil {
		t.Fatalf("mutation after recovery: %v", err)
	}

	// The acknowledged mutations survive a recovery round-trip: rebuild
	// the same base and let NewMutable replay the log (the checkpoint-less
	// recovery path). The fsync-failed record may legitimately replay too
	// (its durability was unknown when it was rejected), so assert
	// presence of the acknowledged rows, not an exact count.
	lenBefore := mx.Len()
	mx.Close()
	mx2 := buildChaosMutable(t, dir)
	defer mx2.Close()
	if mx2.Len() < lenBefore {
		t.Fatalf("recovered %d rows, want >= %d", mx2.Len(), lenBefore)
	}
	ns, err = mx2.Search(v2, 1, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].ID != acked2 {
		t.Fatalf("acknowledged post-recovery row %d lost after replay: got %+v", acked2, ns)
	}
	// The pre-degradation row shares its vector with the replayed
	// unknown-durability record, so look for its ID among the closest few.
	ns, err = mx2.Search(v, 3, resinfer.Exact, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range ns {
		if n.ID == ackedID {
			found = true
		}
	}
	if !found {
		t.Fatalf("acknowledged pre-degradation row %d lost after replay: got %+v", ackedID, ns)
	}
}

// TestTransientAppendFaultRetried: an append fault bounded below the
// retry budget is absorbed in-line — the mutation succeeds and the
// index never degrades.
func TestTransientAppendFaultRetried(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	mx := buildChaosMutable(t, t.TempDir())
	defer mx.Close()

	defer fault.Inject(fault.Injection{
		Site: fault.SiteWALAppend, Err: errors.New("flaky"), Limit: 2,
	})()
	v := make([]float32, 16)
	v[2] = 3
	if _, err := mx.Add(v); err != nil {
		t.Fatalf("mutation with transient fault: %v", err)
	}
	if mx.Degraded() != nil {
		t.Fatalf("transient fault must not degrade: %v", mx.Degraded())
	}
}

// TestCompactFaultIsolated: an injected compaction-build failure is
// surfaced by Compact without corrupting the serving state; once the
// fault clears, compaction succeeds over the same pending segments.
func TestCompactFaultIsolated(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	mx := buildChaosMutable(t, t.TempDir())
	defer mx.Close()

	v := make([]float32, 16)
	for i := 0; i < 8; i++ {
		v[3] = float32(i)
		if _, err := mx.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	disarm := fault.Inject(fault.Injection{Site: fault.SiteCompactBuild, Err: errors.New("oom")})
	if _, err := mx.Compact(); err == nil {
		t.Fatal("want injected compaction error")
	}
	ns, err := mx.Search(v, 5, resinfer.Exact, 0)
	if err != nil || len(ns) != 5 {
		t.Fatalf("search after failed compaction: %d hits, err %v", len(ns), err)
	}
	disarm()
	if n, err := mx.Compact(); err != nil || n == 0 {
		t.Fatalf("compaction after fault cleared: n=%d err=%v", n, err)
	}
}

// TestMutableCloseRacesInFlight: Close racing in-flight Search and Add
// calls must be free of data races and panics (run under -race); the
// index keeps answering searches after Close.
func TestMutableCloseRacesInFlight(t *testing.T) {
	mx := buildChaosMutable(t, t.TempDir())
	q := make([]float32, 16)
	q[0] = 0.5

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := mx.Search(q, 5, resinfer.Exact, 0); err != nil {
					t.Errorf("search during close: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := make([]float32, 16)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v[4] = float32(w*1000 + i)
				// After Close the WAL refuses appends; any error is fine as
				// long as the race detector stays quiet.
				_, _ = mx.Add(v)
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	mx.Close()
	close(stop)
	wg.Wait()
	if _, err := mx.Search(q, 5, resinfer.Exact, 0); err != nil {
		t.Fatalf("search after close: %v", err)
	}
}
