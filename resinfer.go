// Package resinfer is a Go implementation of the distance-computation
// framework of "Effective and General Distance Computation for Approximate
// Nearest Neighbor Search" (ICDE 2025): AKNN indexes (HNSW, IVF) whose
// refinement phase runs through pluggable distance comparison operators —
// exact scan, ADSampling (the SIGMOD 2023 baseline), and the paper's
// DDCres, DDCpca and DDCopq methods.
//
// Typical use:
//
//	idx, err := resinfer.New(data, resinfer.HNSW, nil)
//	err = idx.Enable(resinfer.DDCRes, nil)           // train the comparator
//	hits, err := idx.Search(q, 10, resinfer.DDCRes, 100)
//
// The learned comparators (DDCPCA, DDCOPQ) additionally need training
// queries:
//
//	err = idx.EnableWithTraining(resinfer.DDCOPQ, trainQueries, nil)
//
// All distances are squared Euclidean; identifiers refer to row positions
// in the data slice passed to New.
//
// Vectors are stored in one contiguous row-major buffer (internal/store)
// and the serving path is allocation-free at steady state: every enabled
// mode keeps a pool of query evaluators whose scratch (rotated query,
// suffix tables, PQ lookup tables) is reused across searches.
package resinfer

import (
	"errors"
	"fmt"
	"sync"

	"resinfer/internal/adsampling"
	"resinfer/internal/core"
	"resinfer/internal/ddc"
	"resinfer/internal/flat"
	"resinfer/internal/heap"
	"resinfer/internal/hnsw"
	"resinfer/internal/ivf"
	"resinfer/internal/store"
	"resinfer/internal/vec"
)

// Version identifies the library release; it is exported in the
// server's build-info metric and /stats document.
const Version = "0.8.0"

// Mode selects a distance computation method.
type Mode string

// Available distance computation methods.
const (
	// Exact computes every distance in full (the HNSW/IVF baselines).
	Exact Mode = "exact"
	// ADSampling is the random-projection baseline of Gao & Long
	// (SIGMOD 2023).
	ADSampling Mode = "adsampling"
	// DDCRes is the paper's PCA-projection method with the m·σ Gaussian
	// error bound (§IV, Algorithms 1–2).
	DDCRes Mode = "ddc-res"
	// DDCPCA is the paper's learned correction over plain PCA distances
	// (§V-B); requires training queries.
	DDCPCA Mode = "ddc-pca"
	// DDCOPQ is the paper's learned correction over OPQ asymmetric
	// distances (§V-B); requires training queries.
	DDCOPQ Mode = "ddc-opq"
)

// IndexKind selects the AKNN index structure.
type IndexKind string

// Available index kinds.
const (
	// HNSW is the hierarchical navigable small world graph; the search
	// budget parameter is the beam width ef.
	HNSW IndexKind = "hnsw"
	// IVF is the inverted-file index; the search budget parameter is
	// nprobe, the number of clusters scanned.
	IVF IndexKind = "ivf"
	// Flat scans every point through the comparator (the linear-scan
	// setting of the paper's Table III); the budget parameter is ignored.
	Flat IndexKind = "flat"
)

// Documented option defaults, materialized by Options.withDefaults so
// every package sees the same configuration instead of re-defaulting
// internally.
const (
	// DefaultHNSWM is the HNSW graph degree.
	DefaultHNSWM = 16
	// DefaultHNSWEfConstruction is the HNSW construction beam width.
	DefaultHNSWEfConstruction = 200
	// DefaultADSEpsilon0 is ADSampling's significance parameter.
	DefaultADSEpsilon0 = 2.1
	// DefaultResMultiplier is DDCres's error-bound multiplier m.
	DefaultResMultiplier = 3
	// DefaultDeltaD is the incremental projection step shared by
	// ADSampling and DDCres.
	DefaultDeltaD = 32
	// DefaultTargetRecall is the label-0 recall target of the learned
	// methods.
	DefaultTargetRecall = 0.995
)

// Options tunes index construction and comparator training. The zero value
// (or nil) gives the defaults used in the paper's configuration.
type Options struct {
	// HNSWM is the graph degree (default 16).
	HNSWM int
	// HNSWEfConstruction is the construction beam width (default 200).
	HNSWEfConstruction int
	// IVFNList is the cluster count (default ≈√n).
	IVFNList int
	// ADSEpsilon0 is ADSampling's significance parameter (default 2.1).
	ADSEpsilon0 float64
	// ResMultiplier is DDCres's error-bound multiplier m (default 3).
	ResMultiplier float64
	// DeltaD is the incremental projection step shared by ADSampling and
	// DDCres (default 32).
	DeltaD int
	// TargetRecall is the label-0 recall target of the learned methods
	// (default 0.995).
	TargetRecall float64
	// OPQSubspaces is DDCopq's subspace count M (default dim/4, ≤64).
	OPQSubspaces int
	// Metric selects the similarity measure (default L2). Cosine and
	// InnerProduct are reduced to Euclidean internally; see MetricKind.
	Metric MetricKind
	// Seed makes construction and training deterministic.
	Seed int64
}

// withDefaults materializes every documented default in one place. Fields
// whose default depends on the data (IVFNList ≈ √n, OPQSubspaces = dim/4)
// stay zero and are resolved by the respective package at build time.
func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.HNSWM <= 0 {
		out.HNSWM = DefaultHNSWM
	}
	if out.HNSWEfConstruction <= 0 {
		out.HNSWEfConstruction = DefaultHNSWEfConstruction
	}
	if out.HNSWEfConstruction < out.HNSWM {
		out.HNSWEfConstruction = out.HNSWM
	}
	if out.ADSEpsilon0 <= 0 {
		out.ADSEpsilon0 = DefaultADSEpsilon0
	}
	if out.ResMultiplier <= 0 {
		out.ResMultiplier = DefaultResMultiplier
	}
	if out.DeltaD <= 0 {
		out.DeltaD = DefaultDeltaD
	}
	if out.TargetRecall == 0 {
		out.TargetRecall = DefaultTargetRecall
	}
	if out.Metric == "" {
		out.Metric = L2
	}
	return out
}

// Neighbor is one search hit.
type Neighbor struct {
	ID       int
	Distance float32
}

// SearchStats reports the distance-computation work of one search call.
type SearchStats struct {
	// Comparisons is the number of threshold comparisons performed.
	Comparisons int64
	// Pruned is how many candidates were discarded from approximate
	// distances alone.
	Pruned int64
	// ScanRate is the fraction of vector coordinates touched relative to
	// an exact scan over the same comparisons.
	ScanRate float64
	// PrunedRate is Pruned / Comparisons.
	PrunedRate float64
	// ShardsOK and ShardsFailed report fan-out coverage on a sharded
	// search: how many shards contributed to the merge and how many
	// failed or were abandoned at the deadline. Both are zero on
	// single-index searches; ShardsFailed is only ever non-zero on the
	// deadline-aware path, where ShardsFailed > 0 with a nil error marks
	// a partial result.
	ShardsOK, ShardsFailed int
}

// session is one pooled unit of per-query state: a resettable evaluator
// plus the metric-transform buffer and the raw-hit scratch. Sessions are
// recycled through per-mode sync.Pools, so a steady-state search allocates
// nothing beyond the caller-visible result slice.
type session struct {
	ev    core.ResettableEvaluator
	qbuf  []float32   // metric-transform scratch (internal dimensionality)
	items []heap.Item // raw index hits before Neighbor conversion
}

func newSessionPool(dco core.PooledDCO, dim int) *sync.Pool {
	return &sync.Pool{New: func() any {
		return &session{ev: dco.NewEvaluator(), qbuf: make([]float32, dim)}
	}}
}

// Index is an AKNN index with swappable distance computation.
//
// Concurrency: an Index is read-safe. Once New returns, and once any
// Enable/EnableWithTraining call returns, any number of goroutines may
// call Search, SearchWithStats and SearchBatch concurrently — searches
// share the immutable index structure and draw per-query evaluators from
// a pool. Enable* calls serialize internally and may run concurrently
// with searches; a mode becomes visible to searches atomically.
type Index struct {
	kind    IndexKind
	data    *store.Matrix // rows in the internal (metric-reduced) space
	dim     int           // internal dimensionality
	userDim int           // dimensionality callers present queries in
	metric  *metricState
	opts    Options

	hnswIdx *hnsw.Index
	ivfIdx  *ivf.Index
	flatIdx *flat.Index

	mu    sync.RWMutex
	dcos  map[Mode]core.DCO
	pools map[Mode]*sync.Pool // per-mode session pools, keyed like dcos
}

// New builds an index of the given kind over data (rows of equal length,
// row index = neighbor ID). The rows are copied into one contiguous
// row-major buffer; the caller's slices are not retained. The Exact mode
// is always available; other modes are trained on demand via Enable /
// EnableWithTraining.
func New(data [][]float32, kind IndexKind, opts *Options) (*Index, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("resinfer: empty data")
	}
	o := opts.withDefaults()
	prepared, ms, err := prepareData(data, o.Metric)
	if err != nil {
		return nil, err
	}
	mat, err := store.FromRows(prepared)
	if err != nil {
		return nil, fmt.Errorf("resinfer: %w", err)
	}
	ix := &Index{
		kind:    kind,
		data:    mat,
		dim:     mat.Dim(),
		userDim: len(data[0]),
		metric:  ms,
		opts:    o,
		dcos:    map[Mode]core.DCO{},
		pools:   map[Mode]*sync.Pool{},
	}
	exact, err := core.NewExact(mat)
	if err != nil {
		return nil, err
	}
	ix.installDCO(Exact, exact)
	switch kind {
	case HNSW:
		idx, err := hnsw.Build(mat, hnsw.Config{
			M:              o.HNSWM,
			EfConstruction: o.HNSWEfConstruction,
			Seed:           o.Seed,
		})
		if err != nil {
			return nil, err
		}
		ix.hnswIdx = idx
	case IVF:
		idx, err := ivf.Build(mat, ivf.Config{NList: o.IVFNList, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		ix.ivfIdx = idx
	case Flat:
		idx, err := flat.Build(mat)
		if err != nil {
			return nil, err
		}
		ix.flatIdx = idx
	default:
		return nil, fmt.Errorf("resinfer: unknown index kind %q", kind)
	}
	return ix, nil
}

// installDCO publishes a trained comparator and its evaluator pool.
func (ix *Index) installDCO(mode Mode, dco core.DCO) {
	ix.mu.Lock()
	ix.dcos[mode] = dco
	if p, ok := dco.(core.PooledDCO); ok {
		ix.pools[mode] = newSessionPool(p, ix.dim)
	}
	ix.mu.Unlock()
}

// Enable trains and installs a self-calibrating comparator (ADSampling or
// DDCRes). For the learned methods use EnableWithTraining.
func (ix *Index) Enable(mode Mode, opts *Options) error {
	switch mode {
	case Exact:
		return nil
	case ADSampling, DDCRes:
		return ix.enable(mode, nil, opts)
	case DDCPCA, DDCOPQ:
		return fmt.Errorf("resinfer: mode %s needs training queries; use EnableWithTraining", mode)
	}
	return fmt.Errorf("resinfer: unknown mode %q", mode)
}

// EnableWithTraining trains and installs any comparator; trainQueries are
// required for DDCPCA and DDCOPQ and ignored otherwise.
func (ix *Index) EnableWithTraining(mode Mode, trainQueries [][]float32, opts *Options) error {
	switch mode {
	case Exact:
		return nil
	case ADSampling, DDCRes, DDCPCA, DDCOPQ:
		return ix.enable(mode, trainQueries, opts)
	}
	return fmt.Errorf("resinfer: unknown mode %q", mode)
}

func (ix *Index) enable(mode Mode, trainQueries [][]float32, opts *Options) error {
	o := ix.opts
	if opts != nil {
		o = opts.withDefaults()
	}
	ix.mu.RLock()
	_, done := ix.dcos[mode]
	ix.mu.RUnlock()
	if done {
		return nil
	}
	// Training queries live in the caller's space; move them into the
	// internal (metric-reduced) space the comparators operate in.
	if len(trainQueries) > 0 && ix.metric.kind != L2 {
		transformed := make([][]float32, len(trainQueries))
		for i, tq := range trainQueries {
			tt, err := ix.metric.transformQuery(tq)
			if err != nil {
				return err
			}
			transformed[i] = tt
		}
		trainQueries = transformed
	}
	var dco core.DCO
	var err error
	switch mode {
	case ADSampling:
		dco, err = adsampling.New(ix.data, adsampling.Config{
			Epsilon0: o.ADSEpsilon0, DeltaD: o.DeltaD, Seed: o.Seed,
		})
	case DDCRes:
		dco, err = ddc.NewRes(ix.data, ddc.ResConfig{
			Multiplier: o.ResMultiplier, InitD: o.DeltaD, DeltaD: o.DeltaD, Seed: o.Seed,
		})
	case DDCPCA:
		if len(trainQueries) == 0 {
			return errors.New("resinfer: DDCPCA needs training queries")
		}
		dco, err = ddc.NewPCA(ix.data, trainQueries, ddc.PCAConfig{
			TargetRecall: o.TargetRecall, Seed: o.Seed,
			Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		})
	case DDCOPQ:
		if len(trainQueries) == 0 {
			return errors.New("resinfer: DDCOPQ needs training queries")
		}
		dco, err = ddc.NewOPQ(ix.data, trainQueries, ddc.OPQConfig{
			M: o.OPQSubspaces, TargetRecall: o.TargetRecall, Seed: o.Seed,
			OPQSample: 8192,
			Collect:   ddc.CollectConfig{K: 100, NegPerQuery: 100},
		})
	}
	if err != nil {
		return fmt.Errorf("resinfer: enabling %s: %w", mode, err)
	}
	ix.installDCO(mode, dco)
	return nil
}

// Enabled reports whether the mode's comparator is ready.
func (ix *Index) Enabled(mode Mode) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.dcos[mode]
	return ok
}

// acquire checks out a pooled session for the mode. The caller must return
// it with release (or pool.Put) when the search is done.
func (ix *Index) acquire(mode Mode) (*session, *sync.Pool, error) {
	ix.mu.RLock()
	pool, ok := ix.pools[mode]
	ix.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("resinfer: mode %s not enabled", mode)
	}
	return pool.Get().(*session), pool, nil
}

// Search returns the approximate k nearest neighbors of q using the given
// mode. budget is the index's quality knob: beam width ef for HNSW, probe
// count for IVF; values below k are clamped up.
func (ix *Index) Search(q []float32, k int, mode Mode, budget int) ([]Neighbor, error) {
	ns, _, err := ix.SearchWithStats(q, k, mode, budget)
	return ns, err
}

// SearchWithStats is Search plus the distance-computation work counters.
func (ix *Index) SearchWithStats(q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	return ix.SearchInto(nil, q, k, mode, budget)
}

// SearchInto is SearchWithStats appending the hits to dst, so a caller
// that reuses dst across queries (dst = res[:0]) keeps the steady-state
// search path free of allocations: the evaluator, its scratch tables and
// the index's traversal state all come from pools.
//
//resinfer:noalloc
func (ix *Index) SearchInto(dst []Neighbor, q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	if len(q) != ix.userDim {
		//resinfer:alloc-ok cold invalid-argument path
		return dst, SearchStats{}, fmt.Errorf("resinfer: query dim %d, index expects %d", len(q), ix.userDim)
	}
	s, pool, err := ix.acquire(mode)
	if err != nil {
		return dst, SearchStats{}, err
	}
	dst, st, err := ix.searchSession(s, dst, q, k, budget)
	pool.Put(s)
	return dst, st, err
}

// searchSession runs one query through an already-acquired session.
//
//resinfer:noalloc
func (ix *Index) searchSession(s *session, dst []Neighbor, q []float32, k, budget int) ([]Neighbor, SearchStats, error) {
	tq, err := ix.metric.transformInto(s.qbuf, q)
	if err != nil {
		return dst, SearchStats{}, err
	}
	if err := s.ev.Reset(tq); err != nil {
		return dst, SearchStats{}, err
	}
	s.items = s.items[:0]
	size := ix.data.Rows()
	switch ix.kind {
	case HNSW:
		s.items, err = ix.hnswIdx.SearchEval(s.ev, k, budget, size, s.items)
	case IVF:
		s.items, err = ix.ivfIdx.SearchEval(s.ev, tq, k, budget, size, s.items)
	case Flat:
		s.items, err = ix.flatIdx.SearchEval(s.ev, k, size, s.items)
	default:
		//resinfer:alloc-ok unreachable-by-construction kind guard
		err = fmt.Errorf("resinfer: unknown index kind %q", ix.kind)
	}
	if err != nil {
		return dst, SearchStats{}, err
	}
	for _, it := range s.items {
		dst = append(dst, Neighbor{ID: it.ID, Distance: it.Dist})
	}
	st := s.ev.Stats()
	return dst, SearchStats{
		Comparisons: st.Comparisons,
		Pruned:      st.Pruned,
		ScanRate:    st.ScanRate(ix.dim),
		PrunedRate:  st.PrunedRate(),
	}, nil
}

// SIMDLevel reports which distance-kernel implementation runtime dispatch
// selected for this process: "avx2+fma" (amd64 with AVX2 and FMA),
// "neon" (arm64) or "generic" (the portable scalar fallback, also forced
// by the `noasm` build tag or the RESINFER_NOSIMD=1 environment
// variable). Deployments surface this in startup banners and /stats so a
// silent fall back to the scalar path is visible.
func SIMDLevel() string { return vec.Level() }

// Kind returns the index structure.
func (ix *Index) Kind() IndexKind { return ix.kind }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return ix.data.Rows() }

// Dim returns the internal vector dimensionality (after any metric
// reduction; InnerProduct augments rows with one coordinate).
func (ix *Index) Dim() int { return ix.dim }

// QueryDim returns the dimensionality callers must present queries in —
// the dimensionality of the data passed to New, independent of metric.
func (ix *Index) QueryDim() int { return ix.userDim }

// Modes lists the currently enabled comparators.
func (ix *Index) Modes() []Mode {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Mode, 0, len(ix.dcos))
	for m := range ix.dcos {
		out = append(out, m)
	}
	return out
}
