// Package resinfer is a Go implementation of the distance-computation
// framework of "Effective and General Distance Computation for Approximate
// Nearest Neighbor Search" (ICDE 2025): AKNN indexes (HNSW, IVF) whose
// refinement phase runs through pluggable distance comparison operators —
// exact scan, ADSampling (the SIGMOD 2023 baseline), and the paper's
// DDCres, DDCpca and DDCopq methods.
//
// Typical use:
//
//	idx, err := resinfer.New(data, resinfer.HNSW, nil)
//	err = idx.Enable(resinfer.DDCRes, nil)           // train the comparator
//	hits, err := idx.Search(q, 10, resinfer.DDCRes, 100)
//
// The learned comparators (DDCPCA, DDCOPQ) additionally need training
// queries:
//
//	err = idx.EnableWithTraining(resinfer.DDCOPQ, trainQueries, nil)
//
// All distances are squared Euclidean; identifiers refer to row positions
// in the data slice passed to New.
package resinfer

import (
	"errors"
	"fmt"
	"sync"

	"resinfer/internal/adsampling"
	"resinfer/internal/core"
	"resinfer/internal/ddc"
	"resinfer/internal/flat"
	"resinfer/internal/hnsw"
	"resinfer/internal/ivf"
)

// Mode selects a distance computation method.
type Mode string

// Available distance computation methods.
const (
	// Exact computes every distance in full (the HNSW/IVF baselines).
	Exact Mode = "exact"
	// ADSampling is the random-projection baseline of Gao & Long
	// (SIGMOD 2023).
	ADSampling Mode = "adsampling"
	// DDCRes is the paper's PCA-projection method with the m·σ Gaussian
	// error bound (§IV, Algorithms 1–2).
	DDCRes Mode = "ddc-res"
	// DDCPCA is the paper's learned correction over plain PCA distances
	// (§V-B); requires training queries.
	DDCPCA Mode = "ddc-pca"
	// DDCOPQ is the paper's learned correction over OPQ asymmetric
	// distances (§V-B); requires training queries.
	DDCOPQ Mode = "ddc-opq"
)

// IndexKind selects the AKNN index structure.
type IndexKind string

// Available index kinds.
const (
	// HNSW is the hierarchical navigable small world graph; the search
	// budget parameter is the beam width ef.
	HNSW IndexKind = "hnsw"
	// IVF is the inverted-file index; the search budget parameter is
	// nprobe, the number of clusters scanned.
	IVF IndexKind = "ivf"
	// Flat scans every point through the comparator (the linear-scan
	// setting of the paper's Table III); the budget parameter is ignored.
	Flat IndexKind = "flat"
)

// Options tunes index construction and comparator training. The zero value
// (or nil) gives the defaults used in the paper's configuration.
type Options struct {
	// HNSWM is the graph degree (default 16).
	HNSWM int
	// HNSWEfConstruction is the construction beam width (default 200).
	HNSWEfConstruction int
	// IVFNList is the cluster count (default ≈√n).
	IVFNList int
	// ADSEpsilon0 is ADSampling's significance parameter (default 2.1).
	ADSEpsilon0 float64
	// ResMultiplier is DDCres's error-bound multiplier m (default 3).
	ResMultiplier float64
	// DeltaD is the incremental projection step shared by ADSampling and
	// DDCres (default 32).
	DeltaD int
	// TargetRecall is the label-0 recall target of the learned methods
	// (default 0.995).
	TargetRecall float64
	// OPQSubspaces is DDCopq's subspace count M (default dim/4, ≤64).
	OPQSubspaces int
	// Metric selects the similarity measure (default L2). Cosine and
	// InnerProduct are reduced to Euclidean internally; see MetricKind.
	Metric MetricKind
	// Seed makes construction and training deterministic.
	Seed int64
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	return out
}

// Neighbor is one search hit.
type Neighbor struct {
	ID       int
	Distance float32
}

// SearchStats reports the distance-computation work of one search call.
type SearchStats struct {
	// Comparisons is the number of threshold comparisons performed.
	Comparisons int64
	// Pruned is how many candidates were discarded from approximate
	// distances alone.
	Pruned int64
	// ScanRate is the fraction of vector coordinates touched relative to
	// an exact scan over the same comparisons.
	ScanRate float64
	// PrunedRate is Pruned / Comparisons.
	PrunedRate float64
}

// Index is an AKNN index with swappable distance computation.
//
// Concurrency: an Index is read-safe. Once New returns, and once any
// Enable/EnableWithTraining call returns, any number of goroutines may
// call Search, SearchWithStats and SearchBatch concurrently — searches
// share the immutable index structure and each builds its own per-query
// evaluator. Enable* calls serialize internally and may run concurrently
// with searches; a mode becomes visible to searches atomically.
type Index struct {
	kind    IndexKind
	data    [][]float32 // rows in the internal (metric-reduced) space
	dim     int         // internal dimensionality
	userDim int         // dimensionality callers present queries in
	metric  *metricState
	opts    Options

	hnswIdx *hnsw.Index
	ivfIdx  *ivf.Index
	flatIdx *flat.Index

	mu   sync.RWMutex
	dcos map[Mode]core.DCO
}

// New builds an index of the given kind over data (rows of equal length,
// row index = neighbor ID). The Exact mode is always available; other
// modes are trained on demand via Enable / EnableWithTraining.
func New(data [][]float32, kind IndexKind, opts *Options) (*Index, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("resinfer: empty data")
	}
	o := opts.withDefaults()
	prepared, ms, err := prepareData(data, o.Metric)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		kind:    kind,
		data:    prepared,
		dim:     len(prepared[0]),
		userDim: len(data[0]),
		metric:  ms,
		opts:    o,
		dcos:    map[Mode]core.DCO{},
	}
	exact, err := core.NewExact(prepared)
	if err != nil {
		return nil, err
	}
	ix.dcos[Exact] = exact
	switch kind {
	case HNSW:
		idx, err := hnsw.Build(prepared, hnsw.Config{
			M:              o.HNSWM,
			EfConstruction: o.HNSWEfConstruction,
			Seed:           o.Seed,
		})
		if err != nil {
			return nil, err
		}
		ix.hnswIdx = idx
	case IVF:
		idx, err := ivf.Build(prepared, ivf.Config{NList: o.IVFNList, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		ix.ivfIdx = idx
	case Flat:
		idx, err := flat.Build(prepared)
		if err != nil {
			return nil, err
		}
		ix.flatIdx = idx
	default:
		return nil, fmt.Errorf("resinfer: unknown index kind %q", kind)
	}
	return ix, nil
}

// Enable trains and installs a self-calibrating comparator (ADSampling or
// DDCRes). For the learned methods use EnableWithTraining.
func (ix *Index) Enable(mode Mode, opts *Options) error {
	switch mode {
	case Exact:
		return nil
	case ADSampling, DDCRes:
		return ix.enable(mode, nil, opts)
	case DDCPCA, DDCOPQ:
		return fmt.Errorf("resinfer: mode %s needs training queries; use EnableWithTraining", mode)
	}
	return fmt.Errorf("resinfer: unknown mode %q", mode)
}

// EnableWithTraining trains and installs any comparator; trainQueries are
// required for DDCPCA and DDCOPQ and ignored otherwise.
func (ix *Index) EnableWithTraining(mode Mode, trainQueries [][]float32, opts *Options) error {
	switch mode {
	case Exact:
		return nil
	case ADSampling, DDCRes, DDCPCA, DDCOPQ:
		return ix.enable(mode, trainQueries, opts)
	}
	return fmt.Errorf("resinfer: unknown mode %q", mode)
}

func (ix *Index) enable(mode Mode, trainQueries [][]float32, opts *Options) error {
	o := ix.opts
	if opts != nil {
		o = opts.withDefaults()
	}
	ix.mu.RLock()
	_, done := ix.dcos[mode]
	ix.mu.RUnlock()
	if done {
		return nil
	}
	// Training queries live in the caller's space; move them into the
	// internal (metric-reduced) space the comparators operate in.
	if len(trainQueries) > 0 && ix.metric.kind != L2 {
		transformed := make([][]float32, len(trainQueries))
		for i, tq := range trainQueries {
			tt, err := ix.metric.transformQuery(tq)
			if err != nil {
				return err
			}
			transformed[i] = tt
		}
		trainQueries = transformed
	}
	var dco core.DCO
	var err error
	switch mode {
	case ADSampling:
		dco, err = adsampling.New(ix.data, adsampling.Config{
			Epsilon0: o.ADSEpsilon0, DeltaD: o.DeltaD, Seed: o.Seed,
		})
	case DDCRes:
		dco, err = ddc.NewRes(ix.data, ddc.ResConfig{
			Multiplier: o.ResMultiplier, InitD: o.DeltaD, DeltaD: o.DeltaD, Seed: o.Seed,
		})
	case DDCPCA:
		if len(trainQueries) == 0 {
			return errors.New("resinfer: DDCPCA needs training queries")
		}
		dco, err = ddc.NewPCA(ix.data, trainQueries, ddc.PCAConfig{
			TargetRecall: o.TargetRecall, Seed: o.Seed,
			Collect: ddc.CollectConfig{K: 100, NegPerQuery: 100},
		})
	case DDCOPQ:
		if len(trainQueries) == 0 {
			return errors.New("resinfer: DDCOPQ needs training queries")
		}
		dco, err = ddc.NewOPQ(ix.data, trainQueries, ddc.OPQConfig{
			M: o.OPQSubspaces, TargetRecall: o.TargetRecall, Seed: o.Seed,
			OPQSample: 8192,
			Collect:   ddc.CollectConfig{K: 100, NegPerQuery: 100},
		})
	}
	if err != nil {
		return fmt.Errorf("resinfer: enabling %s: %w", mode, err)
	}
	ix.mu.Lock()
	ix.dcos[mode] = dco
	ix.mu.Unlock()
	return nil
}

// Enabled reports whether the mode's comparator is ready.
func (ix *Index) Enabled(mode Mode) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.dcos[mode]
	return ok
}

// Search returns the approximate k nearest neighbors of q using the given
// mode. budget is the index's quality knob: beam width ef for HNSW, probe
// count for IVF; values below k are clamped up.
func (ix *Index) Search(q []float32, k int, mode Mode, budget int) ([]Neighbor, error) {
	ns, _, err := ix.SearchWithStats(q, k, mode, budget)
	return ns, err
}

// SearchWithStats is Search plus the distance-computation work counters.
func (ix *Index) SearchWithStats(q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	if len(q) != ix.userDim {
		return nil, SearchStats{}, fmt.Errorf("resinfer: query dim %d, index expects %d", len(q), ix.userDim)
	}
	tq, err := ix.metric.transformQuery(q)
	if err != nil {
		return nil, SearchStats{}, err
	}
	q = tq
	ix.mu.RLock()
	dco, ok := ix.dcos[mode]
	ix.mu.RUnlock()
	if !ok {
		return nil, SearchStats{}, fmt.Errorf("resinfer: mode %s not enabled", mode)
	}
	var items []hnsw.Result
	var st core.Stats
	switch ix.kind {
	case HNSW:
		items, st, err = ix.hnswIdx.Search(dco, q, k, budget)
	case IVF:
		items, st, err = ix.ivfIdx.Search(dco, q, k, budget)
	case Flat:
		items, st, err = ix.flatIdx.Search(dco, q, k)
	}
	if err != nil {
		return nil, SearchStats{}, err
	}
	out := make([]Neighbor, len(items))
	for i, it := range items {
		out[i] = Neighbor{ID: it.ID, Distance: it.Dist}
	}
	return out, SearchStats{
		Comparisons: st.Comparisons,
		Pruned:      st.Pruned,
		ScanRate:    st.ScanRate(ix.dim),
		PrunedRate:  st.PrunedRate(),
	}, nil
}

// Kind returns the index structure.
func (ix *Index) Kind() IndexKind { return ix.kind }

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.data) }

// Dim returns the internal vector dimensionality (after any metric
// reduction; InnerProduct augments rows with one coordinate).
func (ix *Index) Dim() int { return ix.dim }

// QueryDim returns the dimensionality callers must present queries in —
// the dimensionality of the data passed to New, independent of metric.
func (ix *Index) QueryDim() int { return ix.userDim }

// Modes lists the currently enabled comparators.
func (ix *Index) Modes() []Mode {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Mode, 0, len(ix.dcos))
	for m := range ix.dcos {
		out = append(out, m)
	}
	return out
}
