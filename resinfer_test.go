package resinfer

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"resinfer/internal/dataset"
)

var (
	apiOnce sync.Once
	apiDS   *dataset.Dataset
	apiGT   [][]int
	apiErr  error
)

func apiFixtures(t testing.TB) (*dataset.Dataset, [][]int) {
	apiOnce.Do(func() {
		ds, err := dataset.Generate(dataset.GenConfig{
			Name: "api-test", N: 2500, Dim: 64, Queries: 20, TrainQueries: 60,
			VE32: 0.8, Seed: 77,
		})
		if err != nil {
			apiErr = err
			return
		}
		gt, err := dataset.BruteForceKNN(ds.Data, ds.Queries, 10, 0)
		if err != nil {
			apiErr = err
			return
		}
		apiDS, apiGT = ds, gt
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiDS, apiGT
}

func recallOf(t testing.TB, ix *Index, queries [][]float32, gt [][]int, mode Mode, budget int) float64 {
	results := make([][]int, len(queries))
	for qi, q := range queries {
		ns, err := ix.Search(q, 10, mode, budget)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ns {
			results[qi] = append(results[qi], n.ID)
		}
	}
	return dataset.Recall(results, gt, 10)
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, HNSW, nil); err == nil {
		t.Fatal("expected empty error")
	}
	ds, _ := apiFixtures(t)
	if _, err := New(ds.Data[:50], IndexKind("btree"), nil); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestHNSWLifecycle(t *testing.T) {
	ds, gt := apiFixtures(t)
	ix, err := New(ds.Data, HNSW, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != HNSW || ix.Len() != len(ds.Data) || ix.Dim() != 64 {
		t.Fatal("metadata")
	}
	if !ix.Enabled(Exact) {
		t.Fatal("Exact must be enabled by default")
	}
	if r := recallOf(t, ix, ds.Queries, gt, Exact, 80); r < 0.95 {
		t.Fatalf("exact recall = %v", r)
	}
	// ADSampling and DDCRes enable without training queries.
	if err := ix.Enable(ADSampling, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mode{ADSampling, DDCRes} {
		if r := recallOf(t, ix, ds.Queries, gt, m, 80); r < 0.9 {
			t.Fatalf("%s recall = %v", m, r)
		}
	}
	// Learned modes require training queries.
	if err := ix.Enable(DDCPCA, nil); err == nil {
		t.Fatal("DDCPCA via Enable must error")
	}
	if err := ix.EnableWithTraining(DDCPCA, ds.Train, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableWithTraining(DDCOPQ, ds.Train, nil); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mode{DDCPCA, DDCOPQ} {
		if r := recallOf(t, ix, ds.Queries, gt, m, 80); r < 0.85 {
			t.Fatalf("%s recall = %v", m, r)
		}
	}
	if len(ix.Modes()) != 5 {
		t.Fatalf("modes = %v", ix.Modes())
	}
}

func TestIVFLifecycle(t *testing.T) {
	ds, gt := apiFixtures(t)
	ix, err := New(ds.Data, IVF, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	exact := recallOf(t, ix, ds.Queries, gt, Exact, 16)
	res := recallOf(t, ix, ds.Queries, gt, DDCRes, 16)
	if res < exact-0.03 {
		t.Fatalf("DDCRes recall %v below exact %v at same nprobe", res, exact)
	}
}

func TestSearchErrors(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:200], HNSW, &Options{Seed: 3, HNSWEfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ds.Queries[0][:10], 5, Exact, 20); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := ix.Search(ds.Queries[0], 5, DDCRes, 20); err == nil {
		t.Fatal("expected not-enabled error")
	}
	if err := ix.Enable(Mode("wat"), nil); err == nil {
		t.Fatal("expected unknown-mode error")
	}
	if err := ix.EnableWithTraining(Mode("wat"), nil, nil); err == nil {
		t.Fatal("expected unknown-mode error")
	}
	if err := ix.EnableWithTraining(DDCOPQ, nil, nil); err == nil {
		t.Fatal("expected missing-training error")
	}
}

func TestSearchStats(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data, HNSW, &Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.SearchWithStats(ds.Queries[0], 10, DDCRes, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Comparisons == 0 {
		t.Fatal("stats not collected")
	}
	if st.PrunedRate < 0 || st.PrunedRate > 1 {
		t.Fatalf("pruned rate %v out of range", st.PrunedRate)
	}
}

func TestEnableIdempotent(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:300], HNSW, &Options{Seed: 5, HNSWEfConstruction: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(Exact, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSearch(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data, HNSW, &Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20; i++ {
				q := ds.Queries[rng.Intn(len(ds.Queries))]
				mode := Exact
				if i%2 == 0 {
					mode = DDCRes
				}
				if _, err := ix.Search(q, 10, mode, 40); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFlatLifecycle(t *testing.T) {
	ds, gt := apiFixtures(t)
	ix, err := New(ds.Data, Flat, &Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind() != Flat {
		t.Fatal("kind")
	}
	if err := ix.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	// Flat + exact = ground truth exactly.
	if r := recallOf(t, ix, ds.Queries, gt, Exact, 0); r != 1 {
		t.Fatalf("flat exact recall = %v, want 1", r)
	}
	if r := recallOf(t, ix, ds.Queries, gt, DDCRes, 0); r < 0.99 {
		t.Fatalf("flat DDCRes recall = %v", r)
	}
}

func TestFlatSaveLoad(t *testing.T) {
	ds, _ := apiFixtures(t)
	ix, err := New(ds.Data[:400], Flat, &Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries[0]
	a, _ := ix.Search(q, 5, Exact, 0)
	b, _ := loaded.Search(q, 5, Exact, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("flat round trip mismatch")
		}
	}
}
