package resinfer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resinfer/internal/fault"
	"resinfer/internal/heap"
	"resinfer/internal/obs"
	"resinfer/internal/persist"
)

// ShardStrategy selects how NewSharded assigns data rows to shards.
type ShardStrategy string

// Available shard assignment strategies.
const (
	// RoundRobin deals rows to shards in turn (row i → shard i mod N),
	// giving every shard a statistically identical slice of the data. This
	// is the default and the right choice when rows arrive in arbitrary
	// order.
	RoundRobin ShardStrategy = "round-robin"
	// Contiguous cuts the data into N equal consecutive blocks, preserving
	// any locality present in row order (e.g. time-ordered ingestion).
	Contiguous ShardStrategy = "contiguous"
)

// Version 2 embeds the v2 single-index streams (flat matrix payloads).
const shardMagic = "RESSHARD2"

// ShardOptions tunes sharded construction and serving. The zero value (or
// nil) gives round-robin assignment and GOMAXPROCS-wide fan-out.
type ShardOptions struct {
	// Strategy assigns rows to shards (default RoundRobin).
	Strategy ShardStrategy
	// SearchWorkers bounds how many shards one Search queries
	// concurrently (default GOMAXPROCS).
	SearchWorkers int
	// Index configures each sub-index; see Options.
	Index *Options
}

// ShardedIndex partitions a dataset across N sub-indexes and serves
// queries by fanning out to every shard and k-way-merging the per-shard
// results back into one globally-ranked answer. Each shard searches with
// the full (k, budget), so for the Exact mode the merge is lossless: the
// sharded result set equals the unsharded one. Like Index, a
// ShardedIndex is read-safe — after NewSharded and any Enable* calls
// return, any number of goroutines may search concurrently. Per-query
// fan-out state (per-shard result buffers, the merge queue) is pooled, so
// sharded searches are allocation-free at steady state apart from the
// caller-visible result slice.
type ShardedIndex struct {
	kind     IndexKind
	strategy ShardStrategy
	metric   MetricKind
	shards   []*Index
	globalID [][]int // globalID[s][localID] = row in the original data
	n        int
	userDim  int
	workers  int // shard fan-out width for single-query Search
	fanPool  sync.Pool
	gtPool   sync.Pool // gtScratch for GroundTruthSearch (groundtruth.go)

	// mut holds the streaming-ingestion state (per-shard memtables,
	// tombstones, the ID allocator). nil on an immutable index, in which
	// case every path below is identical to the read-only build.
	mut *mutState

	// shardObs, when non-nil, receives every shard probe's duration and
	// work counters — the always-on metrics hook of internal/server. It
	// must be installed before searches begin (SetShardObserver) and is
	// nil-cheap: the untraced, unobserved fan-out does not even read the
	// clock.
	shardObs func(shard int, d time.Duration, st SearchStats)

	// hedger, when non-nil, re-issues a slow or failed shard probe to a
	// peer replica (see SetShardHedger; deadline-aware fan-out only).
	// Installed before serving begins, like shardObs. hedgeDelayNs is
	// the per-shard hedge delay in nanoseconds — atomic because an
	// adaptive controller retunes it live from the observed p95; a value
	// <= 0 disables hedging for the query that reads it. hedged and
	// hedgeWins back resinfer_hedged_total / resinfer_hedge_wins_total.
	hedger       ShardHedger
	hedgeDelayNs atomic.Int64
	hedged       atomic.Uint64
	hedgeWins    atomic.Uint64
}

// SetShardObserver installs fn as the per-shard probe observer: it is
// called once per shard per query with the probe's wall duration and
// the shard's SearchStats. Install it before serving begins — the field
// is read without synchronization on the search path. fn must be fast
// and must not allocate if the caller relies on the allocation-free
// steady state.
func (sx *ShardedIndex) SetShardObserver(fn func(shard int, d time.Duration, st SearchStats)) {
	sx.shardObs = fn
}

// shardOut is one shard's contribution before the merge. The ns slice is
// pooled and reused across queries; rq is the per-shard combining queue
// of the mutable path (base hits + memtable hits), allocated lazily.
// done, t0 and d are only used by the deadline-aware fan-out: done is
// written exclusively by the coordinating goroutine (after receiving the
// shard's completion over a channel, which orders the slot's other
// fields), and marks slots that are safe to merge — an abandoned
// straggler may still be writing its own slot.
type shardOut struct {
	ns   []Neighbor
	rq   *heap.ResultQueue
	st   SearchStats
	err  error
	done bool
	t0   time.Time
	d    time.Duration
}

// fanScratch is the pooled per-query fan-out state. houts holds each
// shard's hedge-probe slot (written only by the hedge goroutine the
// coordinator launched for that shard, ordered by the completion
// channel exactly like outs); complete marks shards answered by either
// path; cancels aborts a shard's in-flight hedge when the local probe
// wins.
type fanScratch struct {
	outs     []shardOut
	houts    []shardOut
	complete []bool
	cancels  []context.CancelFunc
	rq       *heap.ResultQueue
	qbuf     []float32        // mutable-path scan-space query scratch (Cosine)
	seen     map[int]struct{} // mutable-path merge dedup, reused across queries
}

func (sx *ShardedIndex) initFanPool() {
	n := len(sx.shards)
	sx.fanPool.New = func() any {
		return &fanScratch{
			outs:     make([]shardOut, n),
			houts:    make([]shardOut, n),
			complete: make([]bool, n),
			cancels:  make([]context.CancelFunc, n),
			rq:       heap.NewResultQueue(16),
		}
	}
	sx.gtPool.New = func() any {
		return &gtScratch{rq: heap.NewResultQueue(16), shardOf: make(map[int]int, 32)}
	}
}

// NewSharded builds nShards sub-indexes of the given kind over data
// (partitioned per opts.Strategy) in parallel. Row index in data remains
// the neighbor ID reported by searches, exactly as with New.
func NewSharded(data [][]float32, kind IndexKind, nShards int, opts *ShardOptions) (*ShardedIndex, error) {
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errors.New("resinfer: empty data")
	}
	if nShards <= 0 {
		return nil, fmt.Errorf("resinfer: shard count must be positive, got %d", nShards)
	}
	if nShards > len(data) {
		return nil, fmt.Errorf("resinfer: %d shards exceed %d data rows", nShards, len(data))
	}
	var o ShardOptions
	if opts != nil {
		o = *opts
	}
	if o.Strategy == "" {
		o.Strategy = RoundRobin
	}
	parts, ids, err := partitionRows(data, nShards, o.Strategy)
	if err != nil {
		return nil, err
	}
	sx := &ShardedIndex{
		kind:     kind,
		strategy: o.Strategy,
		shards:   make([]*Index, nShards),
		globalID: ids,
		n:        len(data),
		userDim:  len(data[0]),
		workers:  o.SearchWorkers,
	}
	if sx.workers <= 0 {
		sx.workers = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, nShards)
	var wg sync.WaitGroup
	for s := range parts {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sx.shards[s], errs[s] = New(parts[s], kind, o.Index)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("resinfer: building shard %d: %w", s, err)
		}
	}
	sx.metric = sx.shards[0].Metric()
	sx.initFanPool()
	return sx, nil
}

// partitionRows splits data into nShards parts and returns, per shard, the
// rows and their global row indices.
func partitionRows(data [][]float32, nShards int, strategy ShardStrategy) ([][][]float32, [][]int, error) {
	parts := make([][][]float32, nShards)
	ids := make([][]int, nShards)
	switch strategy {
	case RoundRobin:
		per := (len(data) + nShards - 1) / nShards
		for s := range parts {
			parts[s] = make([][]float32, 0, per)
			ids[s] = make([]int, 0, per)
		}
		for i, row := range data {
			s := i % nShards
			parts[s] = append(parts[s], row)
			ids[s] = append(ids[s], i)
		}
	case Contiguous:
		for s := range parts {
			lo := s * len(data) / nShards
			hi := (s + 1) * len(data) / nShards
			parts[s] = data[lo:hi]
			ids[s] = make([]int, hi-lo)
			for i := range ids[s] {
				ids[s][i] = lo + i
			}
		}
	default:
		return nil, nil, fmt.Errorf("resinfer: unknown shard strategy %q", strategy)
	}
	return parts, ids, nil
}

// Enable trains and installs a self-calibrating comparator (ADSampling or
// DDCRes) on every shard, in parallel.
func (sx *ShardedIndex) Enable(mode Mode, opts *Options) error {
	return sx.enableAll(mode, nil, opts, false)
}

// EnableWithTraining trains and installs any comparator on every shard in
// parallel; trainQueries are required for DDCPCA and DDCOPQ and ignored
// otherwise. Every shard trains against the full training-query set (the
// queries are workload samples, not data, so they are not partitioned).
func (sx *ShardedIndex) EnableWithTraining(mode Mode, trainQueries [][]float32, opts *Options) error {
	return sx.enableAll(mode, trainQueries, opts, true)
}

func (sx *ShardedIndex) enableAll(mode Mode, trainQueries [][]float32, opts *Options, withTraining bool) error {
	if sx.mut != nil {
		// Serialize against compaction swaps so the new comparator lands on
		// every shard's current base, and record the call so a compacted
		// shard's rebuilt base is retrained with the same configuration.
		sx.mut.mu.Lock()
		defer sx.mut.mu.Unlock()
	}
	errs := make([]error, len(sx.shards))
	var wg sync.WaitGroup
	for s := range sx.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if withTraining {
				errs[s] = sx.shards[s].EnableWithTraining(mode, trainQueries, opts)
			} else {
				errs[s] = sx.shards[s].Enable(mode, opts)
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("resinfer: enabling %s on shard %d: %w", mode, s, err)
		}
	}
	if sx.mut != nil {
		rec := recordedEnable{
			mode: mode, trainQueries: trainQueries, opts: opts, withTraining: withTraining,
		}
		// Latest call per mode wins: a re-enable replaces its record, so
		// compactions retrain each mode once and Save persists one entry
		// (and one training-query set) per mode.
		replaced := false
		for i := range sx.mut.enables {
			if sx.mut.enables[i].mode == mode {
				sx.mut.enables[i] = rec
				replaced = true
				break
			}
		}
		if !replaced {
			sx.mut.enables = append(sx.mut.enables, rec)
		}
	}
	return nil
}

// Enabled reports whether the mode's comparator is ready on every shard.
func (sx *ShardedIndex) Enabled(mode Mode) bool {
	for _, sh := range sx.shards {
		if !sh.Enabled(mode) {
			return false
		}
	}
	return true
}

// Search returns the approximate k nearest neighbors of q, fanning the
// query out to every shard and merging. budget applies per shard (beam
// width ef for HNSW, probe count for IVF).
func (sx *ShardedIndex) Search(q []float32, k int, mode Mode, budget int) ([]Neighbor, error) {
	ns, _, err := sx.SearchWithStats(q, k, mode, budget)
	return ns, err
}

// SearchWithStats is Search plus the distance-computation work counters
// aggregated across shards: Comparisons and Pruned are summed, ScanRate is
// the comparison-weighted average.
func (sx *ShardedIndex) SearchWithStats(q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	return sx.searchFan(nil, nil, q, k, mode, budget, sx.workers, nil)
}

// SearchWithStatsTraced is SearchWithStats additionally recording the
// fan-out, merge and per-shard stage timings into tr (nil tr behaves
// exactly like SearchWithStats).
func (sx *ShardedIndex) SearchWithStatsTraced(q []float32, k int, mode Mode, budget int, tr *obs.Trace) ([]Neighbor, SearchStats, error) {
	return sx.searchFan(nil, nil, q, k, mode, budget, sx.workers, tr)
}

// SearchWithStatsCtx is SearchWithStats under a deadline: every shard is
// probed in its own goroutine, and when ctx expires the stragglers are
// abandoned and the merge returns whatever arrived. Stats.ShardsOK and
// Stats.ShardsFailed report coverage — ShardsFailed > 0 with a nil error
// is a partial result. The error is non-nil only when no shard
// contributed (all failed, or the deadline preempted every probe, in
// which case it is ctx.Err()). Abandoned probes finish on their own
// goroutines and release their scratch to the garbage collector, so a
// stuck shard costs memory, never a stalled request.
func (sx *ShardedIndex) SearchWithStatsCtx(ctx context.Context, q []float32, k int, mode Mode, budget int, tr *obs.Trace) ([]Neighbor, SearchStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return sx.searchFan(ctx, nil, q, k, mode, budget, sx.workers, tr)
}

// SearchInto is SearchWithStats appending the hits to dst; with a reused
// dst the whole fan-out runs without allocations at steady state.
//
//resinfer:noalloc
func (sx *ShardedIndex) SearchInto(dst []Neighbor, q []float32, k int, mode Mode, budget int) ([]Neighbor, SearchStats, error) {
	return sx.searchFan(nil, dst, q, k, mode, budget, sx.workers, nil)
}

// errFanAbandoned marks an all-shards-abandoned merge so searchFan can
// substitute the context's own error.
var errFanAbandoned = errors.New("resinfer: every shard abandoned at deadline")

// searchFan queries the shards through pooled per-shard result buffers,
// then merges into dst. A nil ctx is the plain path: up to workers
// shards probed concurrently (sequentially for workers <= 1), any shard
// error fails the whole query, and with tr == nil the query is
// allocation-free at steady state. A non-nil ctx is the deadline-aware
// path: one goroutine per shard, stragglers abandoned when ctx expires,
// failed or abandoned shards skipped by the merge and counted in
// SearchStats.ShardsFailed.
//
//resinfer:noalloc
func (sx *ShardedIndex) searchFan(ctx context.Context, dst []Neighbor, q []float32, k int, mode Mode, budget, workers int, tr *obs.Trace) ([]Neighbor, SearchStats, error) {
	if len(q) != sx.userDim {
		//resinfer:alloc-ok cold invalid-argument path
		return dst, SearchStats{}, fmt.Errorf("resinfer: query dim %d, index expects %d", len(q), sx.userDim)
	}
	fs := sx.fanPool.Get().(*fanScratch)
	outs := fs.outs
	var qScan []float32
	if sx.mut != nil {
		var serr error
		if qScan, serr = sx.scanQuery(fs, q); serr != nil {
			sx.fanPool.Put(fs)
			return dst, SearchStats{}, serr
		}
	}
	var fanStart time.Time
	if tr != nil {
		fanStart = time.Now()
	}
	abandoned := false
	if ctx != nil {
		abandoned = sx.fanDeadline(ctx, fs, q, qScan, k, mode, budget, tr != nil)
		if tr != nil {
			for s := range outs {
				if outs[s].done && outs[s].err == nil {
					tr.Shard(s, outs[s].t0, outs[s].d, outs[s].st.Comparisons, outs[s].st.Pruned)
				} else if fs.houts[s].done && fs.houts[s].err == nil {
					tr.Shard(s, fs.houts[s].t0, fs.houts[s].d, fs.houts[s].st.Comparisons, fs.houts[s].st.Pruned)
				}
			}
		}
	} else if workers <= 1 || len(sx.shards) == 1 {
		// The sequential fan-out calls the probe as a plain method; the
		// parallel fan-out lives in its own method so no closure here
		// captures qScan (which would heap-box it on every call). This
		// path is allocation-free even with a shard observer installed.
		for s := range sx.shards {
			sx.searchShardObs(s, outs, q, qScan, k, mode, budget, tr)
		}
	} else {
		sx.fanParallel(outs, q, qScan, k, mode, budget, workers, tr)
	}
	var mergeStart time.Time
	if tr != nil {
		tr.End("fanout", fanStart)
		mergeStart = time.Now()
	}
	dst, st, err := sx.merge(dst, fs, q, k, ctx != nil)
	if errors.Is(err, errFanAbandoned) {
		if ce := ctx.Err(); ce != nil {
			err = ce
		}
	}
	if tr != nil {
		tr.End("merge", mergeStart)
	}
	if abandoned {
		// Straggler goroutines still own slots of fs; drop the scratch to
		// the garbage collector instead of racing them through the pool.
		return dst, st, err
	}
	sx.fanPool.Put(fs)
	return dst, st, err
}

// fanParallel probes every shard with up to workers goroutines.
func (sx *ShardedIndex) fanParallel(outs []shardOut, q, qScan []float32, k int, mode Mode, budget, workers int, tr *obs.Trace) {
	if workers > len(sx.shards) {
		workers = len(sx.shards)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for s := range sx.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			defer func() { <-sem }()
			sx.searchShardObs(s, outs, q, qScan, k, mode, budget, tr)
		}(s)
	}
	wg.Wait()
}

// fanDeadline probes every shard on its own goroutine and waits for
// completions until ctx expires, then abandons the stragglers. Each
// completion is delivered over a buffered channel (so abandoned probes
// never block) and marks its slot done — the channel receive orders the
// straggler's writes before the coordinator's reads, making per-slot
// access race-free without locking. Shard timings land in the slot, not
// in tr: a straggler finishing after the caller has released the trace
// must not touch it, so searchFan emits trace entries for done shards
// only, after the fan returns.
//
// With a hedger installed (SetShardHedger) and a positive hedge delay,
// a shard that has not answered when the delay expires — exactly the
// shard that would otherwise trip the fan deadline — has its query
// re-issued to a peer replica; a shard whose local probe fails is
// hedged immediately. The first good answer per shard wins: a local
// completion cancels its losing hedge's context (aborting the remote
// call), and a hedge that answers first is counted as a win. A shard
// counts as failed only when every path — local probe and hedge — has
// failed, so partial results now mean all replicas of a shard are down.
func (sx *ShardedIndex) fanDeadline(ctx context.Context, fs *fanScratch, q, qScan []float32, k int, mode Mode, budget int, timed bool) (abandoned bool) {
	n := len(sx.shards)
	outs := fs.outs
	for s := 0; s < n; s++ {
		outs[s].done = false
		fs.houts[s].done = false
		fs.complete[s] = false
		fs.cancels[s] = nil
	}
	// Buffered for every possible completion — locals plus one hedge per
	// shard — so abandoned probes never block.
	doneCh := make(chan int, 2*n)
	for s := range sx.shards {
		go func(s int) {
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			sx.searchShardObs(s, outs, q, qScan, k, mode, budget, nil)
			if timed {
				outs[s].t0, outs[s].d = t0, time.Since(t0)
			}
			doneCh <- s
		}(s)
	}
	hedging := false
	var hedgeC <-chan time.Time
	if sx.hedger != nil {
		if d := time.Duration(sx.hedgeDelayNs.Load()); d > 0 {
			hedging = true
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}
	launch := func(s int) {
		hctx, cancel := context.WithCancel(ctx)
		fs.cancels[s] = cancel
		sx.hedged.Add(1)
		go func() {
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			h := &fs.houts[s]
			h.ns, h.st, h.err = sx.hedger(hctx, s, q, k, mode, budget)
			if timed {
				h.t0, h.d = t0, time.Since(t0)
			}
			doneCh <- n + s
		}()
	}
	launched := n
	received := 0
	completed := 0
	// arrive records one completion. A shard completes on its first good
	// answer, or once every path that could still answer has failed.
	arrive := func(i int) {
		received++
		s := i
		if i >= n {
			s = i - n
		}
		slot := &outs[s]
		if i >= n {
			slot = &fs.houts[s]
		}
		slot.done = true
		if fs.complete[s] {
			return
		}
		if slot.err == nil {
			fs.complete[s] = true
			completed++
			if i >= n {
				sx.hedgeWins.Add(1)
			} else if c := fs.cancels[s]; c != nil {
				c() // local won: abort the losing hedge
			}
			return
		}
		if i < n {
			// Local probe failed: retry on a replica immediately — no
			// point waiting for the hedge delay — unless one is already
			// in flight or hedging is off.
			if hedging && fs.cancels[s] == nil {
				launched++
				launch(s)
				return
			}
			if fs.cancels[s] != nil && !fs.houts[s].done {
				return // hedge still in flight; it may yet answer
			}
		} else if !outs[s].done {
			return // hedge failed but the local probe may yet answer
		}
		fs.complete[s] = true
		completed++
	}
	for completed < n {
		select {
		case i := <-doneCh:
			arrive(i)
		case <-hedgeC:
			hedgeC = nil
			for s := 0; s < n; s++ {
				if !fs.complete[s] && fs.cancels[s] == nil {
					launched++
					launch(s)
				}
			}
		case <-ctx.Done():
			// Collect probes that completed concurrently with the deadline,
			// then walk away from the rest. No new hedges past the
			// deadline: their context is already dead.
			hedging = false
			for {
				select {
				case i := <-doneCh:
					arrive(i)
				default:
					sx.cancelHedges(fs)
					return true
				}
			}
		}
	}
	// Every shard answered. Drain completions that raced in; if a losing
	// probe is still running it owns its slot, so the scratch must be
	// abandoned rather than repooled.
	for received < launched {
		select {
		case i := <-doneCh:
			arrive(i)
		default:
			sx.cancelHedges(fs)
			return true
		}
	}
	sx.cancelHedges(fs)
	return false
}

// cancelHedges releases every hedge context the fan created; winners
// are already done and losers abort their remote call.
func (sx *ShardedIndex) cancelHedges(fs *fanScratch) {
	for s := range fs.cancels {
		if c := fs.cancels[s]; c != nil {
			c()
			fs.cancels[s] = nil
		}
	}
}

// searchShardObs probes one shard into outs[s], timing the probe when a
// shard observer is installed or a trace is attached. The untimed path
// costs a single branch. A panic inside the probe (index bug, or an
// injected fault) is isolated here into a per-shard error rather than
// killing the process; the recover costs an open-coded defer, keeping
// the steady-state path allocation-free.
//
//resinfer:noalloc
func (sx *ShardedIndex) searchShardObs(s int, outs []shardOut, q, qScan []float32, k int, mode Mode, budget int, tr *obs.Trace) {
	defer func() {
		if r := recover(); r != nil {
			outs[s].ns = outs[s].ns[:0]
			//resinfer:alloc-ok panic recovery is off the steady-state path
			outs[s].err = fmt.Errorf("resinfer: shard %d panicked: %v", s, r)
		}
	}()
	if fault.Active() {
		if err := fault.CheckArg(fault.SiteShardSearch, s); err != nil {
			outs[s].ns = outs[s].ns[:0]
			outs[s].st = SearchStats{}
			outs[s].err = err
			return
		}
	}
	obsOn := sx.shardObs != nil || tr != nil
	var t0 time.Time
	if obsOn {
		t0 = time.Now()
	}
	if sx.mut != nil {
		sx.searchShardMut(s, &outs[s], q, qScan, k, mode, budget)
	} else {
		outs[s].ns, outs[s].st, outs[s].err = sx.shards[s].SearchInto(outs[s].ns[:0], q, k, mode, budget)
	}
	if obsOn {
		d := time.Since(t0)
		if sx.shardObs != nil {
			sx.shardObs(s, d, outs[s].st)
		}
		if tr != nil {
			tr.Shard(s, t0, d, outs[s].st.Comparisons, outs[s].st.Pruned)
		}
	}
}

// merge k-way-merges per-shard results through the bounded result queue,
// translating shard-local IDs to global ones. Shards rank by internal
// squared distance, which is cross-shard comparable for L2 and Cosine; an
// InnerProduct index augments vectors with a per-shard constant, so there
// the merge ranks by the recovered native score instead (see Score). On a
// mutable index the per-shard results arrive already in global-ID /
// merge-key form with tombstoned and shadowed rows filtered out (see
// searchShardMut); the merge additionally drops any duplicate global ID
// so a row can never be reported twice across segments.
//
// In partial mode (the deadline-aware fan) a failed or abandoned shard
// is skipped and counted in ShardsFailed instead of failing the query;
// the merge errors only when no shard contributed — with the first
// shard error, or errFanAbandoned when every probe was preempted.
//
//resinfer:noalloc
func (sx *ShardedIndex) merge(dst []Neighbor, fs *fanScratch, q []float32, k int, partial bool) ([]Neighbor, SearchStats, error) {
	var agg SearchStats
	var scanWeighted float64
	var firstErr error
	rq := fs.rq
	rq.Reset(k)
	mutable := sx.mut != nil
	if mutable {
		if fs.seen == nil {
			fs.seen = make(map[int]struct{}, 4*k) //resinfer:alloc-ok lazy once-per-scratch dedup map
		} else {
			clear(fs.seen)
		}
	}
	for s := range fs.outs {
		out := &fs.outs[s]
		// remote marks a hedge slot: a peer replica already translated its
		// results into global-ID / merge-key form (see SearchShardGlobal),
		// so the local translation below must be skipped.
		remote := false
		if partial {
			// An abandoned slot may still be written by its straggler: the
			// done flag gates every other field read. A shard the local
			// probe lost is answered by its hedge slot when that one holds
			// a good answer; it fails only when every path failed.
			if !out.done || out.err != nil {
				h := &fs.houts[s]
				if h.done && h.err == nil {
					out, remote = h, true
				} else {
					agg.ShardsFailed++
					if firstErr == nil {
						ferr := out.err
						if ferr == nil && h.done {
							ferr = h.err
						}
						if ferr != nil {
							//resinfer:alloc-ok cold shard-failure path
							firstErr = fmt.Errorf("resinfer: shard %d: %w", s, ferr)
						}
					}
					continue
				}
			}
		} else if out.err != nil {
			//resinfer:alloc-ok cold shard-failure path
			return dst, SearchStats{}, fmt.Errorf("resinfer: shard %d: %w", s, out.err)
		}
		agg.ShardsOK++
		st := out.st
		agg.Comparisons += st.Comparisons
		agg.Pruned += st.Pruned
		scanWeighted += st.ScanRate * float64(st.Comparisons)
		for _, n := range out.ns {
			id, key := n.ID, n.Distance
			if mutable || remote {
				if fs.seen != nil {
					if _, dup := fs.seen[id]; dup {
						continue
					}
					fs.seen[id] = struct{}{}
				}
			} else {
				if sx.metric == InnerProduct {
					key = -sx.shards[s].Score(n, q)
				}
				id = sx.globalID[s][n.ID]
			}
			if key < rq.Threshold() {
				rq.Push(id, key)
			}
		}
	}
	if agg.Comparisons > 0 {
		agg.ScanRate = scanWeighted / float64(agg.Comparisons)
		agg.PrunedRate = float64(agg.Pruned) / float64(agg.Comparisons)
	}
	if partial && agg.ShardsOK == 0 {
		if firstErr == nil {
			firstErr = errFanAbandoned
		}
		return dst, agg, firstErr
	}
	start := len(dst)
	for i := 0; i < rq.Len(); i++ {
		dst = append(dst, Neighbor{})
	}
	items := dst[start:]
	for i := len(items) - 1; i >= 0; i-- {
		it, _ := rq.PopMax()
		items[i] = Neighbor{ID: it.ID, Distance: it.Dist}
	}
	return dst, agg, nil
}

// SearchBatch runs Search for every query concurrently across up to
// workers goroutines (default GOMAXPROCS). Parallelism is spent across
// queries; within one query the shards are scanned sequentially, so total
// concurrency stays bounded by workers. Each worker draws pooled fan-out
// and evaluator state that is reused across all queries it processes.
// Batch parameters are validated once up front. Results are positionally
// aligned with queries; per-query failures are reported in the result
// rather than aborting the batch.
func (sx *ShardedIndex) SearchBatch(queries [][]float32, k int, mode Mode, budget, workers int) ([]BatchResult, error) {
	return sx.SearchBatchTraced(queries, k, mode, budget, workers, nil)
}

// SearchBatchTraced is SearchBatch with optional per-query tracing:
// traces, when non-nil, is aligned with queries and each non-nil entry
// receives its query's fan-out, merge and per-shard stage timings. A
// nil traces slice (or nil entries) is exactly SearchBatch.
func (sx *ShardedIndex) SearchBatchTraced(queries [][]float32, k int, mode Mode, budget, workers int, traces []*obs.Trace) ([]BatchResult, error) {
	return sx.searchBatch(nil, queries, k, mode, budget, workers, traces)
}

// SearchBatchCtx is SearchBatchTraced under a deadline: every query runs
// through the deadline-aware fan-out (see SearchWithStatsCtx), so a
// stuck shard costs at most the remaining budget of the queries probing
// it and each BatchResult independently reports partial coverage via
// its Stats.ShardsOK/ShardsFailed. Once ctx expires, queries not yet
// started fail fast with ctx's error.
func (sx *ShardedIndex) SearchBatchCtx(ctx context.Context, queries [][]float32, k int, mode Mode, budget, workers int, traces []*obs.Trace) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return sx.searchBatch(ctx, queries, k, mode, budget, workers, traces)
}

func (sx *ShardedIndex) searchBatch(ctx context.Context, queries [][]float32, k int, mode Mode, budget, workers int, traces []*obs.Trace) ([]BatchResult, error) {
	if err := validateBatch(queries, k, budget, sx.userDim); err != nil {
		return nil, err
	}
	workers = clampWorkers(workers, len(queries))
	out := make([]BatchResult, len(queries))
	var wg sync.WaitGroup
	idxCh := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range idxCh {
				var tr *obs.Trace
				if qi < len(traces) {
					tr = traces[qi]
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						out[qi] = BatchResult{Err: err}
						continue
					}
				}
				ns, st, err := sx.searchFan(ctx, nil, queries[qi], k, mode, budget, 1, tr)
				out[qi] = BatchResult{Neighbors: ns, Stats: st, Err: err}
			}
		}()
	}
	for qi := range queries {
		idxCh <- qi
	}
	close(idxCh)
	wg.Wait()
	return out, nil
}

// Score converts a Neighbor returned by this sharded index into the
// metric's native score, mirroring Index.Score. For InnerProduct the
// merge already ranks by native score, so Distance holds the negated
// inner product and Score simply flips the sign.
func (sx *ShardedIndex) Score(n Neighbor, q []float32) float32 {
	if sx.metric == InnerProduct {
		return -n.Distance
	}
	if len(sx.shards) == 0 || sx.shards[0] == nil {
		return n.Distance
	}
	return sx.shards[0].Score(n, q)
}

// Kind returns the shards' index structure.
func (sx *ShardedIndex) Kind() IndexKind { return sx.kind }

// Strategy returns the shard assignment strategy.
func (sx *ShardedIndex) Strategy() ShardStrategy { return sx.strategy }

// Metric returns the index's similarity measure.
func (sx *ShardedIndex) Metric() MetricKind { return sx.metric }

// Len returns the total number of indexed vectors across shards. On a
// mutable index this is the live row count: inserts minus deletes,
// unaffected by compaction.
func (sx *ShardedIndex) Len() int {
	if sx.mut != nil {
		return int(sx.mut.liveN.Load())
	}
	return sx.n
}

// Dim returns the internal vector dimensionality (shards agree). It
// returns 0 on a corrupt index with no shards rather than panicking.
func (sx *ShardedIndex) Dim() int {
	if len(sx.shards) == 0 || sx.shards[0] == nil {
		return 0
	}
	return sx.shards[0].Dim()
}

// QueryDim returns the dimensionality callers must present queries in.
func (sx *ShardedIndex) QueryDim() int { return sx.userDim }

// NumShards returns the shard count.
func (sx *ShardedIndex) NumShards() int { return len(sx.shards) }

// Modes lists the comparators enabled on every shard. It returns an
// empty list on a corrupt index with no shards rather than panicking.
func (sx *ShardedIndex) Modes() []Mode {
	out := []Mode{}
	if len(sx.shards) == 0 || sx.shards[0] == nil {
		return out
	}
	for _, m := range sx.shards[0].Modes() {
		if sx.Enabled(m) {
			out = append(out, m)
		}
	}
	return out
}

// Save serializes the sharded index — strategy, global ID mapping, and
// every shard with its enabled comparators — as one stream: a container
// header followed by each shard in the single-index format. A mutable
// index must be saved through MutableIndex.Save, which additionally
// persists the memtable and tombstone segments; saving it here would
// silently drop pending mutations, so it is refused.
func (sx *ShardedIndex) Save(w io.Writer) error {
	if sx.mut != nil {
		return errors.New("resinfer: index has streaming segments; save it through MutableIndex.Save")
	}
	pw := persist.NewWriter(w)
	if err := sx.encodeSharded(pw); err != nil {
		return err
	}
	return pw.Flush()
}

// encodeSharded writes the sharded container onto an existing persist
// stream. It is the codec-level half of Save, shared with the mutable
// RESSTRM1 container, which embeds it between its own header and the
// per-shard streaming segments. The caller must hold whatever locks make
// sx.shards/globalID stable.
func (sx *ShardedIndex) encodeSharded(pw *persist.Writer) error {
	pw.Magic(shardMagic)
	pw.String(string(sx.strategy))
	pw.Int(len(sx.shards))
	pw.Int(sx.n)
	pw.Int(sx.userDim)
	for s := range sx.shards {
		pw.Ints(sx.globalID[s])
		if err := sx.shards[s].encode(pw); err != nil {
			return err
		}
	}
	return pw.Err()
}

// LoadSharded deserializes a sharded index written by Save.
func LoadSharded(r io.Reader) (*ShardedIndex, error) {
	return decodeSharded(persist.NewReader(r))
}

// decodeSharded reads one sharded container from an existing persist
// reader (the codec-level half of LoadSharded, shared with the mutable
// RESSTRM1 container).
func decodeSharded(pr *persist.Reader) (*ShardedIndex, error) {
	pr.Magic(shardMagic)
	strategy := ShardStrategy(pr.String())
	nShards := pr.Int()
	n := pr.Int()
	userDim := pr.Int()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if nShards <= 0 || nShards > n {
		return nil, fmt.Errorf("resinfer: corrupt shard count %d (n=%d)", nShards, n)
	}
	if userDim <= 0 {
		return nil, fmt.Errorf("resinfer: corrupt query dimensionality %d", userDim)
	}
	sx := &ShardedIndex{
		strategy: strategy,
		shards:   make([]*Index, nShards),
		globalID: make([][]int, nShards),
		n:        n,
		userDim:  userDim,
		workers:  runtime.GOMAXPROCS(0),
	}
	for s := 0; s < nShards; s++ {
		sx.globalID[s] = pr.Ints()
		if err := pr.Err(); err != nil {
			return nil, err
		}
		sh, err := decodeIndex(pr)
		if err != nil {
			return nil, fmt.Errorf("resinfer: decoding shard %d: %w", s, err)
		}
		if len(sx.globalID[s]) != sh.Len() {
			return nil, fmt.Errorf("resinfer: shard %d has %d rows but %d global IDs",
				s, sh.Len(), len(sx.globalID[s]))
		}
		sx.shards[s] = sh
	}
	sx.kind = sx.shards[0].Kind()
	sx.metric = sx.shards[0].Metric()
	sx.initFanPool()
	return sx, nil
}

// SaveFile writes the sharded index to a file.
func (sx *ShardedIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sx.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadShardedFile reads a sharded index from a file written by SaveFile.
func LoadShardedFile(path string) (*ShardedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSharded(f)
}
