package resinfer

import (
	"bytes"
	"testing"

	"resinfer/internal/dataset"
)

func shardedRecallOf(t testing.TB, sx *ShardedIndex, queries [][]float32, gt [][]int, mode Mode, budget int) float64 {
	t.Helper()
	results := make([][]int, len(queries))
	for qi, q := range queries {
		ns, err := sx.Search(q, 10, mode, budget)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ns {
			results[qi] = append(results[qi], n.ID)
		}
	}
	return dataset.Recall(results, gt, 10)
}

func TestNewShardedErrors(t *testing.T) {
	ds, _ := apiFixtures(t)
	if _, err := NewSharded(nil, Flat, 2, nil); err == nil {
		t.Fatal("expected empty-data error")
	}
	if _, err := NewSharded(ds.Data[:10], Flat, 0, nil); err == nil {
		t.Fatal("expected non-positive shard count error")
	}
	if _, err := NewSharded(ds.Data[:10], Flat, 11, nil); err == nil {
		t.Fatal("expected too-many-shards error")
	}
	if _, err := NewSharded(ds.Data[:10], Flat, 2, &ShardOptions{Strategy: "hash"}); err == nil {
		t.Fatal("expected unknown-strategy error")
	}
}

// Exact mode over flat shards must be lossless: the merged result set
// equals the unsharded exact scan, for both assignment strategies.
func TestShardedExactLossless(t *testing.T) {
	ds, gt := apiFixtures(t)
	for _, strategy := range []ShardStrategy{RoundRobin, Contiguous} {
		sx, err := NewSharded(ds.Data, Flat, 3, &ShardOptions{Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		if sx.Len() != len(ds.Data) || sx.NumShards() != 3 || sx.Strategy() != strategy {
			t.Fatal("metadata")
		}
		if r := shardedRecallOf(t, sx, ds.Queries, gt, Exact, 0); r != 1.0 {
			t.Fatalf("strategy %s: exact sharded recall = %v, want 1.0", strategy, r)
		}
	}
}

func TestShardedHNSWWithDCO(t *testing.T) {
	ds, gt := apiFixtures(t)
	sx, err := NewSharded(ds.Data, HNSW, 3, &ShardOptions{Index: &Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	if !sx.Enabled(DDCRes) || !sx.Enabled(Exact) {
		t.Fatal("modes should be enabled on every shard")
	}
	if r := shardedRecallOf(t, sx, ds.Queries, gt, DDCRes, 80); r < 0.9 {
		t.Fatalf("sharded HNSW+DDCRes recall = %v", r)
	}
	// Stats must aggregate across shards.
	_, st, err := sx.SearchWithStats(ds.Queries[0], 10, DDCRes, 80)
	if err != nil {
		t.Fatal(err)
	}
	if st.Comparisons == 0 || st.ScanRate <= 0 || st.ScanRate > 1 {
		t.Fatalf("implausible aggregated stats: %+v", st)
	}
}

func TestShardedEnableWithTraining(t *testing.T) {
	ds, gt := apiFixtures(t)
	sx, err := NewSharded(ds.Data, IVF, 2, &ShardOptions{Index: &Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.EnableWithTraining(DDCPCA, ds.Train, nil); err != nil {
		t.Fatal(err)
	}
	if r := shardedRecallOf(t, sx, ds.Queries, gt, DDCPCA, 24); r < 0.8 {
		t.Fatalf("sharded IVF+DDCPCA recall = %v", r)
	}
}

func TestShardedBatchMatchesSingle(t *testing.T) {
	ds, _ := apiFixtures(t)
	sx, err := NewSharded(ds.Data, Flat, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sx.SearchBatch(ds.Queries, 10, Exact, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		single, err := sx.Search(ds.Queries[qi], 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(r.Neighbors) {
			t.Fatalf("query %d: batch %d hits, single %d", qi, len(r.Neighbors), len(single))
		}
		for i := range single {
			if single[i].ID != r.Neighbors[i].ID {
				t.Fatalf("query %d rank %d: batch %d, single %d", qi, i, r.Neighbors[i].ID, single[i].ID)
			}
		}
	}
}

func TestShardedBatchValidation(t *testing.T) {
	ds, _ := apiFixtures(t)
	sx, err := NewSharded(ds.Data[:100], Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sx.SearchBatch(nil, 10, Exact, 0, 0); err == nil {
		t.Fatal("expected empty-batch error")
	}
	if _, err := sx.SearchBatch(ds.Queries, 0, Exact, 0, 0); err == nil {
		t.Fatal("expected bad-k error")
	}
	if _, err := sx.SearchBatch(ds.Queries, 10, Exact, -1, 0); err == nil {
		t.Fatal("expected bad-budget error")
	}
	bad := [][]float32{{1, 2, 3}}
	if _, err := sx.SearchBatch(bad, 10, Exact, 0, 0); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	ds, gt := apiFixtures(t)
	sx, err := NewSharded(ds.Data, HNSW, 2, &ShardOptions{Index: &Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.Enable(DDCRes, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	lx, err := LoadSharded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lx.Len() != sx.Len() || lx.NumShards() != 2 || lx.Kind() != HNSW || lx.Strategy() != RoundRobin {
		t.Fatal("round-trip metadata")
	}
	if !lx.Enabled(DDCRes) {
		t.Fatal("round-trip should keep DDCRes enabled")
	}
	// Loaded index must answer identically to the original.
	for _, q := range ds.Queries[:5] {
		a, err := sx.Search(q, 10, DDCRes, 80)
		if err != nil {
			t.Fatal(err)
		}
		b, err := lx.Search(q, 10, DDCRes, 80)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("result length %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("rank %d: %d vs %d", i, a[i].ID, b[i].ID)
			}
		}
	}
	if r := shardedRecallOf(t, lx, ds.Queries, gt, DDCRes, 80); r < 0.9 {
		t.Fatalf("round-trip recall = %v", r)
	}
}

func TestLoadShardedRejectsCorruption(t *testing.T) {
	ds, _ := apiFixtures(t)
	sx, err := NewSharded(ds.Data[:200], Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadSharded(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
	mangled := append([]byte("XX"), raw[2:]...)
	if _, err := LoadSharded(bytes.NewReader(mangled)); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

// An InnerProduct sharded index augments each shard's vectors with a
// different constant, so the merge must rank by the recovered native
// score; verify the sharded top-k matches the unsharded one.
func TestShardedInnerProductMerge(t *testing.T) {
	ds, _ := apiFixtures(t)
	data := ds.Data[:600]
	opts := &Options{Metric: InnerProduct}
	ix, err := New(data, Flat, opts)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := NewSharded(data, Flat, 3, &ShardOptions{Index: opts})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ds.Queries[:10] {
		want, err := ix.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("result length %d vs %d", len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID {
				t.Fatalf("rank %d: sharded %d (score %v), unsharded %d (score %v)",
					i, got[i].ID, sx.Score(got[i], q), want[i].ID, ix.Score(want[i], q))
			}
		}
	}
}
