module resinfer/tools/resinferlint

go 1.22

// This module is intentionally dependency-free. The analyzer framework
// under internal/analysis mirrors the golang.org/x/tools/go/analysis
// API surface (Analyzer, Pass, Diagnostic, analysistest-style golden
// tests) but is implemented on the standard library only, because the
// build environment has no module proxy access. If x/tools becomes
// available, the analyzers port over mechanically: the signatures are
// deliberately identical.
