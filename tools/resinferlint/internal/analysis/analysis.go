// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis API surface used by resinferlint.
//
// The build environment for this repository has no module proxy, so
// x/tools cannot be fetched; rather than vendoring thousands of lines,
// this package provides the three types the analyzers actually need —
// Analyzer, Pass, and Diagnostic — with the same field names and
// semantics as the upstream package. Porting an analyzer to the real
// x/tools framework is a matter of changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis pass: a name, a doc string, and a
// Run function invoked once per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by -help.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Reportf and returns an error only for internal failures
	// (a finding is not an error).
	Run func(*Pass) (interface{}, error)
}

// Pass provides the analyzer's view of one package: syntax, type
// information, and a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report is installed by the driver; analyzers call Reportf.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
