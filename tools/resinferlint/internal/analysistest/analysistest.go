// Package analysistest runs an analyzer over a fixture module and
// checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a self-contained module rooted at dir (it has its own
// go.mod, so `go list` never reaches the network). Expectations are
// written as trailing comments on the line where the diagnostic is
// expected:
//
//	mu.Lock() // want `shardSeg\.mu acquired while holding`
//	x := y    // want "copies lock" "second expectation"
//
// Every want must be matched by a diagnostic on its line, and every
// diagnostic must match a want; anything else fails the test.
package analysistest

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/checker"
	"resinfer/tools/resinferlint/internal/load"
)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// Run loads the fixture module at dir and applies a, matching
// diagnostics against // want comments. Patterns default to ./...
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Fixtures are standalone modules; disable any enclosing go.work.
	env := append(os.Environ(), "GOWORK=off")
	pkgs, err := load.Load(load.Config{Dir: dir, Env: env}, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", dir, terr)
		}
	}
	if t.Failed() {
		return
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, re := range parseWants(t, pos.String(), c.Text) {
						wants = append(wants, &want{
							file: pos.Filename,
							line: pos.Line,
							re:   re,
							text: re.String(),
						})
					}
				}
			}
		}
	}

	diags, err := checker.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text)
		}
	}
}

var wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)`)

// parseWants extracts the quoted or backquoted regexps from a
// want comment (// want "a", with backquoted patterns also accepted).
// Returns nil for ordinary comments.
func parseWants(t *testing.T, at, text string) []*regexp.Regexp {
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	rest := strings.TrimSuffix(strings.TrimSpace(m[1]), "*/")
	var res []*regexp.Regexp
	for rest != "" {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		var lit string
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				t.Fatalf("%s: unterminated want string: %s", at, rest)
			}
			var err error
			lit, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", at, rest[:end+1], err)
			}
			rest = rest[end+1:]
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want raw string: %s", at, rest)
			}
			lit = rest[1 : 1+end]
			rest = rest[end+2:]
		default:
			t.Fatalf("%s: malformed want comment near %q", at, rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", at, lit, err)
		}
		res = append(res, re)
	}
	if res == nil {
		t.Fatalf("%s: want comment with no expectations", at)
	}
	return res
}
