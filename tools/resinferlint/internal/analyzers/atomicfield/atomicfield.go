// Package atomicfield enforces two memory-model invariants:
//
//  1. A struct field passed to sync/atomic (atomic.AddInt64(&x.f, ...))
//     anywhere in a package must be accessed through sync/atomic
//     everywhere in that package — a single plain read of such a field
//     is a data race that -race only catches if the schedule cooperates.
//  2. Values whose type transitively contains a sync or sync/atomic
//     type (Mutex, RWMutex, WaitGroup, Once, Pool, atomic.Int64, ...)
//     must not be copied. This is stricter than vet's copylocks: it
//     also flags by-value range iteration and lock-bearing function
//     result types.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "atomic fields stay atomic everywhere; lock-bearing values are never copied",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}

	// Pass 1: collect fields addressed in sync/atomic calls.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(pass, sel); fv != nil {
					atomicFields[fv] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		// Pass 2: plain accesses of atomic fields.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			if fv := fieldOf(pass, sel); fv != nil && atomicFields[fv] {
				pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access is a data race", fieldLabel(fv))
			}
			return true
		})
		// Pass 3: lock copies.
		checkCopies(pass, f)
	}
	return nil, nil
}

func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func fieldLabel(v *types.Var) string {
	return v.Name()
}

func checkCopies(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if isValueRead(rhs) {
					if t := exprType(pass, rhs); t != nil && lockBearing(t) {
						pass.Reportf(rhs.Pos(), "assignment copies lock-bearing value of type %s", typeLabel(t))
					}
				}
			}
		case *ast.CallExpr:
			if lintutil.IsConversion(pass.TypesInfo, n) {
				return true
			}
			for _, arg := range n.Args {
				if !isValueRead(arg) {
					continue
				}
				if t := exprType(pass, arg); t != nil && lockBearing(t) {
					pass.Reportf(arg.Pos(), "call passes lock-bearing value of type %s; pass a pointer", typeLabel(t))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := exprType(pass, n.Value); t != nil && lockBearing(t) {
					pass.Reportf(n.Value.Pos(), "range copies lock-bearing value of type %s per iteration; range over indices or pointers", typeLabel(t))
				}
			}
			if n.Key != nil {
				if t := exprType(pass, n.Key); t != nil && lockBearing(t) {
					pass.Reportf(n.Key.Pos(), "range copies lock-bearing key of type %s per iteration", typeLabel(t))
				}
			}
		case *ast.FuncDecl:
			checkResults(pass, n.Type)
		case *ast.FuncLit:
			checkResults(pass, n.Type)
		}
		return true
	})
}

func checkResults(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Results == nil {
		return
	}
	for _, field := range ft.Results.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if lockBearing(tv.Type) {
			pass.Reportf(field.Type.Pos(), "function returns lock-bearing type %s by value; return a pointer", typeLabel(tv.Type))
		}
	}
}

// isValueRead reports whether e reads an existing value (as opposed to
// constructing one with a literal or call, which cannot alias a live
// lock).
func isValueRead(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	default:
		return false
	}
}

func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				return obj.Type()
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				return obj.Type()
			}
		}
		return nil
	}
	return tv.Type
}

func typeLabel(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// lockBearing reports whether t transitively contains a sync or
// sync/atomic type. sync.Locker (a plain interface) doesn't count.
func lockBearing(t types.Type) bool {
	return lockBearing1(t, map[types.Type]bool{})
}

func lockBearing1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return obj.Name() != "Locker"
			}
		}
		return lockBearing1(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockBearing1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockBearing1(u.Elem(), seen)
	}
	return false
}
