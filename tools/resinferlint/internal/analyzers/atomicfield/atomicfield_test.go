package atomicfield_test

import (
	"testing"

	"resinfer/tools/resinferlint/internal/analysistest"
	"resinfer/tools/resinferlint/internal/analyzers/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", atomicfield.Analyzer)
}
