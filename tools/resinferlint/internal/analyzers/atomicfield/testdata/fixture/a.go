package atomfix

import (
	"sync"
	"sync/atomic"
)

// counter mixes atomic and plain access to the same field — the race
// class the analyzer exists for.
type counter struct {
	n    int64
	last int64
}

func (c *counter) Incr() int64 { return atomic.AddInt64(&c.n, 1) }

func (c *counter) Read() int64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere`
}

func (c *counter) Reset() {
	c.n = 0 // want `field n is accessed with sync/atomic elsewhere`
}

func (c *counter) ReadLast() int64 {
	return c.last // plain field, never touched atomically: fine
}

func (c *counter) LoadOK() int64 { return atomic.LoadInt64(&c.n) }

// guarded is the copylocks half: any copy of a mutex-bearing value is
// a defect.
type guarded struct {
	mu  sync.Mutex
	val int
}

type stats struct {
	served atomic.Int64
}

func copyAssign(g *guarded) int {
	h := *g // want `assignment copies lock-bearing value of type atomfix.guarded`
	h.val++
	return h.val
}

func copyRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range copies lock-bearing value of type atomfix.guarded per iteration`
		total += g.val
	}
	return total
}

func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].val
	}
	return total
}

func take(g guarded) int { return g.val }

func callByValue(g *guarded) int {
	return take(*g) // want `call passes lock-bearing value of type atomfix.guarded; pass a pointer`
}

// want-on-decl: the result type itself is the defect, stricter than vet.
func snapshot(s *stats) stats { // want `function returns lock-bearing type atomfix.stats by value`
	return *s
}

func snapshotPtr(s *stats) *stats { return s }
