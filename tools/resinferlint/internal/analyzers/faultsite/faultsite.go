// Package faultsite ensures every fault.Check / fault.CheckArg call
// names its injection site with a constant declared in the central
// registry (internal/fault's Site constants).
//
// Fault specs are matched by string equality at runtime: a misspelled
// site in a Check call (or a site invented inline at a call site)
// silently never fires, which defeats the point of fault-injection
// coverage. Forcing every call through the registry means ParseSpec
// can validate -faults specs against the same list at flag-parse time.
package faultsite

import (
	"go/ast"
	"go/types"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "faultsite",
	Doc:  "fault.Check sites must be constants from the internal/fault site registry",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The registry package's own plumbing (Check forwarding its site
	// parameter to CheckArg) is exempt; the invariant is about call
	// sites in product code.
	if lintutil.PkgMatches(pass.Pkg, "internal/fault") || (pass.Pkg != nil && pass.Pkg.Name() == "fault") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Name() != "Check" && fn.Name() != "CheckArg" {
				return true
			}
			if !lintutil.PkgMatches(fn.Pkg(), "internal/fault") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			checkSiteArg(pass, fn.Pkg(), call.Args[0])
			return true
		})
	}
	return nil, nil
}

func checkSiteArg(pass *analysis.Pass, faultPkg *types.Package, arg ast.Expr) {
	arg = ast.Unparen(arg)
	var id *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.BasicLit:
		pass.Reportf(arg.Pos(), "fault site is a string literal; use a Site constant from the internal/fault registry")
		return
	case *ast.CallExpr:
		pass.Reportf(arg.Pos(), "fault site constructed inline; use a Site constant from the internal/fault registry")
		return
	default:
		pass.Reportf(arg.Pos(), "fault site must be a Site constant from the internal/fault registry")
		return
	}
	obj := pass.TypesInfo.Uses[id]
	c, ok := obj.(*types.Const)
	if !ok {
		pass.Reportf(arg.Pos(), "fault site %s is not a constant; use a Site constant from the internal/fault registry", id.Name)
		return
	}
	if c.Pkg() != faultPkg {
		pass.Reportf(arg.Pos(), "fault site %s is declared outside the internal/fault registry; add it to the registry instead", id.Name)
		return
	}
	if named := lintutil.NamedOf(c.Type()); named == nil || named.Obj().Name() != "Site" {
		pass.Reportf(arg.Pos(), "fault site %s is not of type fault.Site; use a registry constant", id.Name)
	}
}
