package faultsite_test

import (
	"testing"

	"resinfer/tools/resinferlint/internal/analysistest"
	"resinfer/tools/resinferlint/internal/analyzers/faultsite"
)

func TestFaultsite(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", faultsite.Analyzer)
}
