package faultfix

import "faultfix/internal/fault"

// localSite reproduces the pre-registry defect class: a site name
// minted outside internal/fault that no -faults spec validation knows
// about.
const localSite fault.Site = "compact.local"

func registryConstant(s int) error {
	if err := fault.CheckArg(fault.SiteShardSearch, s); err != nil {
		return err
	}
	return fault.Check(fault.SiteWALAppend)
}

func stringLiteral() error {
	return fault.Check("wal.append") // want `fault site is a string literal; use a Site constant`
}

func inlineConversion() error {
	return fault.Check(fault.Site("wal.fsync")) // want `fault site constructed inline`
}

func outsideRegistry() error {
	return fault.Check(localSite) // want `fault site localSite is declared outside the internal/fault registry`
}

func nonConstant(s fault.Site) error {
	return fault.CheckArg(s, 3) // want `fault site s is not a constant`
}
