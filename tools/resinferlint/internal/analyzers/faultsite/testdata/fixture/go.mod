module faultfix

go 1.22
