// Package fault mirrors resinfer/internal/fault's registry shape: a
// Site string type with constants as the central registry.
package fault

// Site names one fault-injection point.
type Site string

// The registry.
const (
	SiteWALAppend   Site = "wal.append"
	SiteShardSearch Site = "shard.search"
)

// Check evaluates a site with no argument filter.
func Check(site Site) error { return CheckArg(site, -1) }

// CheckArg evaluates a site for one argument.
func CheckArg(site Site, arg int) error { _, _ = site, arg; return nil }
