// Package lockorder statically checks resinfer's documented lock
// hierarchy and finds Unlock-less early returns.
//
// # The hierarchy
//
// The serving/mutation path has exactly four lock classes, ordered:
//
//	mutState.mu     (level 10)  per-index mutation coordinator
//	wal.Log.mu      (level 15)  WAL internal lock — a leaf: WAL methods
//	                            take it and release it internally
//	shardSeg.mu     (level 20)  per-shard segment swap lock
//	replica.Set.mu  (level 30)  replica membership state — a leaf:
//	                            probes and hedges do network I/O strictly
//	                            outside it, and nothing is acquired under it
//
// A lock may only be acquired while every held lock has a strictly
// lower level, and nothing may be acquired while a leaf is held.
// Two rules fall out, matching the prose contract from the WAL PR:
// "mutState.mu before shardSeg.mu" and "never call into the WAL while
// holding a segment lock" (a WAL append under seg.mu would stall every
// reader on that shard for the duration of an fsync).
//
// Calls to methods on *wal.Log from outside package wal are modeled as
// acquire+release of the WAL leaf, so `seg.mu.Lock(); m.wal.Append(...)`
// is flagged without interprocedural analysis.
//
// # Early returns
//
// Within a function, a tracked lock acquired on some path must be
// released on that path — by an explicit Unlock, a deferred Unlock, or
// a deferred closure that net-releases it — before any return. The
// checker walks a conservative abstract state through if/else, switch,
// select, and loops (loop bodies are analyzed once; states merge by
// intersection), so it finds the "error path returns with mu held"
// class of bug without false-flagging the usual patterns.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "enforce mutState.mu -> shardSeg.mu ordering, WAL-as-leaf, and no lock-holding returns",
	Run:  run,
}

// lockClass identifies one lock in the hierarchy by the named struct
// type that embeds it and the mutex field's name. pkgName, when
// non-empty, additionally requires the defining package's name to
// match (so fixtures can model wal.Log without the full import path).
type lockClass struct {
	typeName  string
	fieldName string
	pkgName   string
	level     int
	leaf      bool
	label     string
}

var classes = []lockClass{
	{typeName: "mutState", fieldName: "mu", level: 10, label: "mutState.mu"},
	{typeName: "Log", fieldName: "mu", pkgName: "wal", level: 15, leaf: true, label: "wal.Log.mu"},
	{typeName: "shardSeg", fieldName: "mu", level: 20, label: "shardSeg.mu"},
	{typeName: "Set", fieldName: "mu", pkgName: "replica", level: 30, leaf: true, label: "replica.Set.mu"},
}

func classFor(typeName, pkgName, fieldName string) *lockClass {
	for i := range classes {
		c := &classes[i]
		if c.typeName != typeName || c.fieldName != fieldName {
			continue
		}
		if c.pkgName != "" && c.pkgName != pkgName {
			continue
		}
		return c
	}
	return nil
}

// walClass is the leaf modeled for *wal.Log method calls.
func walClass() *lockClass {
	for i := range classes {
		if classes[i].leaf {
			return &classes[i]
		}
	}
	return nil
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass}
			st := newState()
			w.stmts(fd.Body.List, st)
			w.checkExit(fd.Body.Rbrace, st, "the end of the function")
		}
	}
	return nil, nil
}

// held is one acquired lock.
type held struct {
	class *lockClass
	pos   token.Pos
}

type state struct {
	held     []held
	deferred map[string]bool // class labels with a pending deferred release

	// maybe holds class labels acquired on only some of the merged
	// paths (e.g. `if mut != nil { seg.mu.RLock() }`). A release of a
	// maybe-held lock is legal — the guarding conditions are usually
	// correlated — and a maybe-held lock is not reported at returns;
	// only definitely-held locks are.
	maybe map[string]bool

	// terminated is set once the path has returned (or panicked):
	// exits were already checked there, and the state must not leak
	// into branch merges.
	terminated bool
}

func newState() *state {
	return &state{deferred: map[string]bool{}, maybe: map[string]bool{}}
}

func (s *state) clone() *state {
	c := &state{held: append([]held(nil), s.held...), deferred: map[string]bool{}, maybe: map[string]bool{}, terminated: s.terminated}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	for k, v := range s.maybe {
		c.maybe[k] = v
	}
	return c
}

func (s *state) holding(label string) bool {
	for _, h := range s.held {
		if h.class.label == label {
			return true
		}
	}
	return false
}

func (s *state) acquire(c *lockClass, pos token.Pos) {
	s.held = append(s.held, held{class: c, pos: pos})
}

func (s *state) release(label string) bool {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].class.label == label {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return true
		}
	}
	return false
}

// merge joins two branch states. A terminated branch (it returned)
// contributes nothing: the fall-through state is the other branch.
// Otherwise only locks held on both branches survive (with the union
// of deferred releases), so a lock released on one arm of an if isn't
// reported as held after the join.
func merge(a, b *state) *state {
	switch {
	case a.terminated && b.terminated:
		m := newState()
		m.terminated = true
		return m
	case a.terminated:
		return b.clone()
	case b.terminated:
		return a.clone()
	}
	m := newState()
	for _, h := range a.held {
		if b.holding(h.class.label) {
			m.held = append(m.held, h)
		} else {
			m.maybe[h.class.label] = true
		}
	}
	for _, h := range b.held {
		if !a.holding(h.class.label) {
			m.maybe[h.class.label] = true
		}
	}
	for k := range a.maybe {
		m.maybe[k] = true
	}
	for k := range b.maybe {
		m.maybe[k] = true
	}
	for k := range a.deferred {
		m.deferred[k] = true
	}
	for k := range b.deferred {
		m.deferred[k] = true
	}
	return m
}

type walker struct {
	pass *analysis.Pass
}

func (w *walker) stmts(list []ast.Stmt, st *state) {
	for _, s := range list {
		if st.terminated {
			return
		}
		w.stmt(s, st)
	}
}

func (w *walker) stmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanCalls(s.Cond, st)
		thenSt := st.clone()
		w.stmt(s.Body, thenSt)
		elseSt := st.clone()
		if s.Else != nil {
			w.stmt(s.Else, elseSt)
		}
		*st = *merge(thenSt, elseSt)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanCalls(s.Cond, st)
		body := st.clone()
		w.stmt(s.Body, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		// The loop may run zero times; keep the pre-loop state.
	case *ast.RangeStmt:
		w.scanCalls(s.X, st)
		body := st.clone()
		w.stmt(s.Body, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.branches(s, st)
	case *ast.DeferStmt:
		w.deferStmt(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanCalls(r, st)
		}
		w.checkExit(s.Pos(), st, "this return")
		st.terminated = true
	case *ast.ExprStmt:
		w.scanCalls(s, st)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				st.terminated = true
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.GoStmt:
		// The goroutine body runs with its own (empty) lock state.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sub := newState()
			w.stmts(lit.Body.List, sub)
			w.checkExit(lit.Body.Rbrace, sub, "the end of the goroutine")
		}
		for _, a := range s.Call.Args {
			w.scanCalls(a, st)
		}
	default:
		w.scanCalls(s, st)
	}
}

// branches runs each clause of a switch/select on a clone and merges.
func (w *walker) branches(s ast.Stmt, st *state) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanCalls(s.Tag, st)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	if body == nil || len(body.List) == 0 {
		return
	}
	var merged *state
	hasDefault := false
	for _, clause := range body.List {
		cl := st.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scanCalls(e, cl)
			}
			w.stmts(c.Body, cl)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(c.Comm, cl)
			}
			w.stmts(c.Body, cl)
		}
		if merged == nil {
			merged = cl
		} else {
			merged = merge(merged, cl)
		}
	}
	if !hasDefault {
		// Without a default the switch may fall through untouched.
		merged = merge(merged, st)
	}
	*st = *merged
}

// deferStmt handles `defer x.mu.Unlock()` and deferred closures that
// net-release locks.
func (w *walker) deferStmt(s *ast.DeferStmt, st *state) {
	if c, op := w.classifyLockCall(s.Call); c != nil && (op == "Unlock" || op == "RUnlock") {
		st.deferred[c.label] = true
		return
	}
	lit, ok := s.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// Simulate the closure body: whatever it net-releases counts as a
	// deferred release (e.g. defer func() { mu.Unlock(); log(...) }()).
	// Net-acquires (balanced Lock/Unlock inside) are ignored.
	acquired := map[string]int{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c, op := w.classifyLockCall(call)
		if c == nil {
			return true
		}
		switch op {
		case "Lock", "RLock":
			acquired[c.label]++
		case "Unlock", "RUnlock":
			acquired[c.label]--
		}
		return true
	})
	for label, n := range acquired {
		if n < 0 {
			st.deferred[label] = true
		}
	}
}

// scanCalls walks any node, interpreting lock/unlock calls and WAL
// method calls in source order. Function literal bodies are analyzed
// as independent functions with an empty lock state.
func (w *walker) scanCalls(n ast.Node, st *state) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sub := newState()
			w.stmts(n.Body.List, sub)
			w.checkExit(n.Body.Rbrace, sub, "the end of the function literal")
			return false
		case *ast.CallExpr:
			w.call(n, st)
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr, st *state) {
	if c, op := w.classifyLockCall(call); c != nil {
		switch op {
		case "Lock", "RLock":
			w.checkAcquire(call.Pos(), c, st)
			st.acquire(c, call.Pos())
		case "Unlock", "RUnlock":
			if !st.release(c.label) {
				if st.maybe[c.label] {
					delete(st.maybe, c.label)
				} else if !st.deferred[c.label] {
					w.pass.Reportf(call.Pos(), "%s released here but not acquired on this path", c.label)
				}
			}
		}
		return
	}
	// Model wal method calls as touching the WAL leaf lock.
	if wc := walClass(); wc != nil && w.isWALMethodCall(call) {
		w.checkAcquire(call.Pos(), wc, st)
	}
}

func (w *walker) checkAcquire(pos token.Pos, c *lockClass, st *state) {
	for _, h := range st.held {
		switch {
		case h.class.leaf:
			w.pass.Reportf(pos, "%s acquired while holding leaf lock %s; nothing may be acquired under a leaf lock", c.label, h.class.label)
		case h.class.label == c.label:
			w.pass.Reportf(pos, "%s acquired while already holding %s: self-deadlock or unordered same-class instances", c.label, h.class.label)
		case h.class.level >= c.level:
			w.pass.Reportf(pos, "lock order inversion: %s (level %d) acquired while holding %s (level %d); the documented order is mutState.mu -> wal.Log.mu / shardSeg.mu", c.label, c.level, h.class.label, h.class.level)
		}
	}
}

func (w *walker) checkExit(pos token.Pos, st *state, where string) {
	if st.terminated {
		return
	}
	for _, h := range st.held {
		if st.deferred[h.class.label] {
			continue
		}
		w.pass.Reportf(pos, "%s may still be held at %s (acquired at %s)", h.class.label, where, w.pass.Fset.Position(h.pos))
	}
}

// classifyLockCall matches x.<field>.Lock/Unlock/RLock/RUnlock where
// <field> belongs to one of the hierarchy's lock classes, returning
// the class and the method name.
func (w *walker) classifyLockCall(call *ast.CallExpr) (*lockClass, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	fv, ok := w.pass.TypesInfo.Uses[inner.Sel].(*types.Var)
	if !ok || !fv.IsField() {
		return nil, ""
	}
	ownerTV, ok := w.pass.TypesInfo.Types[inner.X]
	if !ok || ownerTV.Type == nil {
		return nil, ""
	}
	named := lintutil.NamedOf(ownerTV.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return nil, ""
	}
	return classFor(named.Obj().Name(), named.Obj().Pkg().Name(), inner.Sel.Name), op
}

// isWALMethodCall reports whether call invokes a method on *wal.Log
// (the type holding the leaf lock) from outside package wal itself;
// inside package wal the explicit mu operations are the truth.
func (w *walker) isWALMethodCall(call *ast.CallExpr) bool {
	wc := walClass()
	fn := lintutil.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Name() == wc.pkgName && w.pass.Pkg != nil && w.pass.Pkg.Name() == wc.pkgName {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := lintutil.NamedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == wc.typeName && named.Obj().Pkg().Name() == wc.pkgName
}
