package lockorder_test

import (
	"testing"

	"resinfer/tools/resinferlint/internal/analysistest"
	"resinfer/tools/resinferlint/internal/analyzers/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", lockorder.Analyzer)
}
