package lockfix

import (
	"errors"
	"sync"

	"lockfix/internal/wal"
)

var errBoom = errors.New("boom")

// shardSeg and mutState mirror the real mutation-path types: the
// analyzer keys on the type and field names.
type shardSeg struct {
	mu   sync.RWMutex
	rows int
}

type mutState struct {
	mu   sync.Mutex
	segs []*shardSeg
	wal  *wal.Log
}

// upsertOK follows the documented order: mutState.mu, WAL append
// (leaf, internally locked), then the segment lock.
func (m *mutState) upsertOK(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.wal.Append(b); err != nil {
		return err
	}
	seg := m.segs[0]
	seg.mu.Lock()
	seg.rows++
	seg.mu.Unlock()
	return nil
}

// walUnderSeg reproduces the forbidden shape the hierarchy exists to
// prevent: a WAL append (and its fsync) while readers are blocked on
// the segment lock.
func (m *mutState) walUnderSeg(b []byte) error {
	seg := m.segs[0]
	seg.mu.Lock()
	defer seg.mu.Unlock()
	return m.wal.Append(b) // want `lock order inversion: wal\.Log\.mu`
}

// segBeforeMut inverts the two mutation locks.
func (m *mutState) segBeforeMut() {
	seg := m.segs[0]
	seg.mu.Lock()
	m.mu.Lock() // want `lock order inversion: mutState\.mu`
	m.mu.Unlock()
	seg.mu.Unlock()
}

// earlyReturn leaks the coordinator lock on the error path — the
// missing-Unlock class.
func (m *mutState) earlyReturn(fail bool) error {
	m.mu.Lock()
	if fail {
		return errBoom // want `mutState\.mu may still be held at this return`
	}
	m.mu.Unlock()
	return nil
}

// leak never unlocks at all.
func (m *mutState) leak() {
	m.mu.Lock()
	m.segs[0].rows++
} // want `mutState\.mu may still be held at the end of the function`

// double self-deadlocks (or aliases two instances without an order).
func (m *mutState) double() {
	m.mu.Lock()
	m.mu.Lock() // want `mutState\.mu acquired while already holding mutState\.mu`
	m.mu.Unlock()
	m.mu.Unlock()
}

// strayUnlock releases a lock this path never took.
func (m *mutState) strayUnlock() {
	m.mu.Unlock() // want `mutState\.mu released here but not acquired on this path`
}

// correlated is the groundtruth-scan shape: acquire and release behind
// correlated conditionals. No diagnostic — the maybe-held state keeps
// this quiet.
func (m *mutState) correlated(cond bool) {
	var seg *shardSeg
	if cond {
		seg = m.segs[0]
		seg.mu.RLock()
	}
	if seg != nil {
		seg.mu.RUnlock()
	}
}

// deferClosure releases through a deferred closure, the compactor's
// pattern.
func (m *mutState) deferClosure() {
	m.mu.Lock()
	defer func() {
		m.segs[0].rows++
		m.mu.Unlock()
	}()
	m.segs[0].rows++
}

// branchRelease unlocks on both arms; the merge must not report.
func (m *mutState) branchRelease(cond bool) {
	m.mu.Lock()
	if cond {
		m.mu.Unlock()
	} else {
		m.mu.Unlock()
	}
}

// spawn runs a goroutine with its own lock discipline.
func (m *mutState) spawn() {
	go func() {
		m.mu.Lock()
		m.mu.Unlock()
	}()
}

// loopBalanced locks and unlocks per iteration, the save/scan shape.
func (m *mutState) loopBalanced() int {
	total := 0
	for _, seg := range m.segs {
		seg.mu.RLock()
		total += seg.rows
		seg.mu.RUnlock()
	}
	return total
}
