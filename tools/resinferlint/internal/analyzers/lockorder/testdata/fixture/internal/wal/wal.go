// Package wal mirrors resinfer/internal/wal's locking shape: Log owns
// a leaf mutex that every method takes and releases internally.
package wal

import "sync"

// Log is the write-ahead log.
type Log struct {
	mu  sync.Mutex
	lsn int64
}

// Append writes one record.
func (l *Log) Append(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lsn += int64(len(b))
	return nil
}

// Sync flushes to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return nil
}
