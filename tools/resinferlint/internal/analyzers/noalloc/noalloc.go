// Package noalloc checks functions annotated //resinfer:noalloc for
// constructs that heap-allocate, keeping the 0 allocs/op steady-state
// serving contract a static property instead of a benchmark-only one.
//
// # Annotation contract
//
// A function whose doc comment carries the directive
//
//	//resinfer:noalloc
//
// promises that, at steady state, executing it performs zero heap
// allocations. The analyzer flags, inside such functions:
//
//   - function literals (closures allocate; the one exception is an
//     open-coded `defer func() { ... }()` outside any loop, which the
//     compiler stack-allocates)
//   - go statements (a goroutine allocates its stack and closure)
//   - calls into fmt and errors (both allocate on every call)
//   - make, new, map/slice composite literals, &T{} literals
//   - string <-> []byte / []rune conversions
//   - non-constant string concatenation
//   - passing non-pointer concrete values to interface parameters, and
//     assigning them to interface variables (boxing allocates)
//   - append to a slice variable local to the function that was never
//     given capacity (appending to caller-provided or pooled slices is
//     amortized-free and allowed)
//
// Cold paths inside a hot function — error returns, lazy one-time
// initialization — are exempted line by line with a trailing or
// preceding //resinfer:alloc-ok comment. The escape hatch is visible
// in review and greppable, which is the point: every deliberate
// allocation in a hot path has a written excuse.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "//resinfer:noalloc functions must not contain heap-allocating constructs",
	Run:  run,
}

const (
	directive = "//resinfer:noalloc"
	escape    = "//resinfer:alloc-ok"
)

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		allowed := escapeLines(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			c := &check{pass: pass, allowed: allowed}
			c.funcBody(fd.Body)
		}
	}
	return nil, nil
}

func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// escapeLines records the lines carrying an //resinfer:alloc-ok
// comment. A construct is exempt if the directive sits on its own
// line or on the line directly above it.
func escapeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), escape) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

type check struct {
	pass    *analysis.Pass
	allowed map[int]bool

	// localSlices maps function-local slice variables declared with
	// `var x []T` (no capacity) to their declaration; cleared when the
	// variable is reassigned to anything but its own append.
	localSlices map[types.Object]bool
}

func (c *check) exempt(pos token.Pos) bool {
	line := c.pass.Fset.Position(pos).Line
	return c.allowed[line] || c.allowed[line-1]
}

func (c *check) reportf(pos token.Pos, format string, args ...interface{}) {
	if c.exempt(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// funcBody checks one annotated function body.
func (c *check) funcBody(body *ast.BlockStmt) {
	c.localSlices = map[types.Object]bool{}
	c.collectLocalSlices(body)

	var stack []ast.Node
	inLoop := func() bool {
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			case *ast.FuncLit:
				// A loop outside an inner closure doesn't make the
				// closure body "in a loop".
				return false
			}
		}
		return false
	}
	deferredLit := map[*ast.FuncLit]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && !inLoop() {
				deferredLit[lit] = true
			}
		case *ast.GoStmt:
			c.reportf(n.Pos(), "go statement allocates a goroutine and closure; not allowed in a noalloc function")
		case *ast.FuncLit:
			if !deferredLit[n] {
				c.reportf(n.Pos(), "function literal allocates a closure; hoist it or restructure")
			}
		case *ast.CallExpr:
			c.call(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if tv, ok := c.pass.TypesInfo.Types[lit]; ok && tv.Type != nil {
						c.reportf(n.Pos(), "&%s literal allocates; use pooled storage", tv.Type)
					}
				}
			}
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.BinaryExpr:
			c.concat(n)
		case *ast.AssignStmt:
			c.assignBoxing(n)
		}
		stack = append(stack, n)
		return true
	})
}

// collectLocalSlices finds `var x []T` declarations with no initial
// value and removes any that are later reassigned (e.g. to a
// make-with-cap), leaving only truly capacity-less locals.
func (c *check) collectLocalSlices(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					c.localSlices[obj] = true
				}
			}
		}
		return true
	})
	// Reassignment (x = make(...), x = y) gives the variable capacity
	// the analyzer can't reason about; stop tracking it.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pass.TypesInfo.Uses[id]
			if obj == nil || !c.localSlices[obj] {
				continue
			}
			if i < len(as.Rhs) && isSelfAppend(as.Rhs[i], id.Name) {
				continue
			}
			delete(c.localSlices, obj)
		}
		return true
	})
}

func isSelfAppend(rhs ast.Expr, name string) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && first.Name == name
}

func (c *check) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo

	// Type conversions: string <-> []byte/[]rune copy their payload.
	if lintutil.IsConversion(info, call) && len(call.Args) == 1 {
		to := info.Types[call.Fun].Type
		from := info.Types[call.Args[0]].Type
		if isStringBytesConv(to, from) {
			c.reportf(call.Pos(), "%s conversion copies its payload to the heap", convLabel(to, from))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.reportf(call.Pos(), "make allocates; pool or preallocate outside the hot path")
			case "new":
				c.reportf(call.Pos(), "new(T) allocates; pool or preallocate outside the hot path")
			case "append":
				c.appendCall(call)
			}
			return
		}
	}

	fn := lintutil.CalleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			c.reportf(call.Pos(), "call to %s.%s allocates on every call", fn.Pkg().Name(), fn.Name())
			return
		case "errors":
			// errors.Is/As/Unwrap only walk the chain; the
			// constructors allocate.
			switch fn.Name() {
			case "Is", "As", "Unwrap":
			default:
				c.reportf(call.Pos(), "call to %s.%s allocates on every call", fn.Pkg().Name(), fn.Name())
				return
			}
		}
	}

	// Boxing: a non-pointer concrete argument passed to an interface
	// parameter allocates.
	c.callBoxing(call, fn)
}

func (c *check) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // appending to fields or caller-provided storage: amortized
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj != nil && c.localSlices[obj] {
		c.reportf(call.Pos(), "append to %s, a function-local slice with no preallocated capacity; reuse pooled storage or preallocate", id.Name)
	}
}

func (c *check) callBoxing(call *ast.CallExpr, fn *types.Func) {
	info := c.pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		c.boxing(arg, "argument")
	}
}

func (c *check) assignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := c.typeOf(lhs)
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		c.boxing(as.Rhs[i], "assignment")
	}
}

// typeOf resolves an expression's type, falling back to the object
// maps for bare identifiers (assignment targets are not recorded in
// Info.Types).
func (c *check) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if o := c.pass.TypesInfo.Defs[id]; o != nil {
			return o.Type()
		}
		if o := c.pass.TypesInfo.Uses[id]; o != nil {
			return o.Type()
		}
	}
	return nil
}

// boxing flags e if converting it to an interface heap-allocates:
// non-pointer-shaped, non-constant concrete values do.
func (c *check) boxing(e ast.Expr, what string) {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	t := tv.Type
	if types.IsInterface(t) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: boxes without allocating
	}
	c.reportf(e.Pos(), "%s converts %s to interface, which allocates; use a pointer or restructure", what, t)
}

// composite flags map and slice literals; by-value struct and array
// literals stay on the stack and are fine (&T{} is handled at the
// enclosing unary expression).
func (c *check) composite(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.reportf(lit.Pos(), "map literal allocates")
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal allocates")
	}
}

func (c *check) concat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[b]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		c.reportf(b.OpPos, "non-constant string concatenation allocates")
	}
}

func isStringBytesConv(to, from types.Type) bool {
	return (isString(to) && isBytesOrRunes(from)) || (isBytesOrRunes(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBytesOrRunes(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func convLabel(to, from types.Type) string {
	return strings.TrimSpace(from.String() + " -> " + to.String())
}
