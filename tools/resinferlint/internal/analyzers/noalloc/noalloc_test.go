package noalloc_test

import (
	"testing"

	"resinfer/tools/resinferlint/internal/analysistest"
	"resinfer/tools/resinferlint/internal/analyzers/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", noalloc.Analyzer)
}
