package noallocfix

import (
	"fmt"
	"sync"
)

type index struct {
	shards []int
	out    []int
}

// fanOut reproduces the heap-boxed loop capture that lived in the
// sharded fan-out until the observability PR fixed it: the goroutine
// and its closure over s allocate on every query.
//
//resinfer:noalloc
func (ix *index) fanOut() {
	for s := range ix.shards {
		go func() { // want `go statement allocates` `function literal allocates a closure`
			ix.out[s] = s
		}()
	}
}

//resinfer:noalloc
func describe(k int) string {
	return fmt.Sprintf("k=%d", k) // want `call to fmt.Sprintf allocates on every call`
}

//resinfer:noalloc
func buildSeen(keys []int) bool {
	seen := make(map[int]bool, len(keys)) // want `make allocates`
	for _, k := range keys {
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

//resinfer:noalloc
func lazyInit(ix *index) {
	if ix.out == nil {
		ix.out = make([]int, 8) //resinfer:alloc-ok lazy one-time init
	}
}

//resinfer:noalloc
func toString(b []byte) string {
	return string(b) // want `conversion copies its payload to the heap`
}

//resinfer:noalloc
func concat(a, b string) string {
	return a + b // want `non-constant string concatenation allocates`
}

//resinfer:noalloc
func localAppend(n int) int {
	var tmp []int
	for i := 0; i < n; i++ {
		tmp = append(tmp, i) // want `append to tmp, a function-local slice with no preallocated capacity`
	}
	return len(tmp)
}

// paramAppend is the allowed shape: appending into caller-provided
// (pooled, reused) storage is amortized-free.
//
//resinfer:noalloc
func paramAppend(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// localWithCap is also allowed: the local is re-initialized with
// capacity before any append (the make itself carries an alloc-ok).
//
//resinfer:noalloc
func localWithCap(n int) int {
	var tmp []int
	tmp = make([]int, 0, 16) //resinfer:alloc-ok preallocated once per call for the test
	for i := 0; i < n; i++ {
		tmp = append(tmp, i)
	}
	return len(tmp)
}

type sink func(v any)

//resinfer:noalloc
func boxArg(emit sink, v int) {
	emit(v) // want `argument converts int to interface, which allocates`
}

//resinfer:noalloc
func boxAssign(v [2]float64) (out any) {
	out = v // want `assignment converts \[2\]float64 to interface, which allocates`
	return out
}

//resinfer:noalloc
func sliceLit() int {
	xs := []int{1, 2, 3} // want `slice literal allocates`
	return xs[0]
}

//resinfer:noalloc
func mapLit() int {
	m := map[int]int{1: 2} // want `map literal allocates`
	return m[1]
}

type node struct{ v int }

//resinfer:noalloc
func escapeLit() *node {
	return &node{v: 1} // want `literal allocates; use pooled storage`
}

//resinfer:noalloc
func newNode() *node {
	return new(node) // want `new\(T\) allocates`
}

// deferOK is the blessed exception: a single open-coded defer closure
// outside any loop is stack-allocated by the compiler.
//
//resinfer:noalloc
func deferOK(mu *sync.Mutex, ix *index) {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	ix.out[0] = 1
}

// deferInLoop is not: a deferred closure per iteration allocates.
//
//resinfer:noalloc
func deferInLoop(mus []*sync.Mutex) {
	for _, mu := range mus {
		defer func() { // want `function literal allocates a closure`
			_ = mu
		}()
	}
}

// unannotated functions may allocate freely.
func unannotated() []int {
	return []int{1, 2, 3}
}
