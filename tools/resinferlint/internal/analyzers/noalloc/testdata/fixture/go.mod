module noallocfix

go 1.22
