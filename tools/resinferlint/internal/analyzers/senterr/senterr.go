// Package senterr flags sentinel-error misuse: comparing package-level
// error values with == or != (or switch cases) instead of errors.Is,
// and fmt.Errorf wraps that include an error operand but no %w verb.
//
// Wrapping with %v (or %s) breaks the errors.Is/As chain: callers that
// correctly use errors.Is(err, ErrDegraded) stop matching as soon as
// one layer wraps without %w. Comparing with == breaks the moment any
// layer starts wrapping. Both defects shipped in this repo before the
// analyzer existed (the fan-out abandon path compared its sentinel
// with ==), which is exactly the class this pass keeps extinct.
package senterr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "senterr",
	Doc:  "sentinel errors must be compared with errors.Is and wrapped with %w",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkCompare(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkWrap(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinel returns the package-level error variable e refers to, if any.
func sentinel(pass *analysis.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !lintutil.IsErrorType(v.Type()) {
		return nil
	}
	return v
}

func checkCompare(pass *analysis.Pass, n *ast.BinaryExpr) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	for _, operand := range []ast.Expr{n.X, n.Y} {
		if v := sentinel(pass, operand); v != nil {
			pass.Reportf(n.OpPos, "sentinel error %s compared with %s; use errors.Is", v.Name(), n.Op)
			return
		}
	}
}

func checkSwitch(pass *analysis.Pass, n *ast.SwitchStmt) {
	if n.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[n.Tag]
	if !ok || !lintutil.IsErrorType(tv.Type) {
		return
	}
	for _, stmt := range n.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinel(pass, e); v != nil {
				pass.Reportf(e.Pos(), "sentinel error %s used as switch case; use switch { case errors.Is(err, %s): }", v.Name(), v.Name())
			}
		}
	}
}

// checkWrap flags fmt.Errorf calls that format at least one
// error-typed operand but contain no %w verb at all. A format that
// wraps one error with %w and reports another with %v is deliberate
// and passes.
func checkWrap(pass *analysis.Pass, call *ast.CallExpr) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if hasWrapVerb(format) {
		return
	}
	for _, arg := range call.Args[1:] {
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || atv.Type == nil {
			continue
		}
		if types.IsInterface(atv.Type) || !isNilConst(atv) {
			if lintutil.IsErrorType(atv.Type) {
				pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; use %%w so errors.Is keeps working")
				return
			}
		}
	}
}

func isNilConst(tv types.TypeAndValue) bool {
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// hasWrapVerb reports whether format contains a %w verb, skipping %%
// escapes.
func hasWrapVerb(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			i++
			continue
		}
		// Scan past flags, width, precision, and index to the verb.
		j := i + 1
		for j < len(format) {
			c := format[j]
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
				break
			}
			j++
		}
		if j < len(format) && format[j] == 'w' {
			return true
		}
		i = j
	}
	return false
}
