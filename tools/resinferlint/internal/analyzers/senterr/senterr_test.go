package senterr_test

import (
	"testing"

	"resinfer/tools/resinferlint/internal/analysistest"
	"resinfer/tools/resinferlint/internal/analyzers/senterr"
)

func TestSenterr(t *testing.T) {
	analysistest.Run(t, "testdata/fixture", senterr.Analyzer)
}
