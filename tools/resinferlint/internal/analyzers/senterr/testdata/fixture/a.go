package sentfix

import (
	"errors"
	"fmt"
	"io"
)

var (
	ErrAbandoned = errors.New("every shard abandoned at deadline")
	ErrClosed    = errors.New("wal: closed")
)

// realDefectClass reproduces the exact comparison that shipped in the
// fan-out abandon path (sharded.go) before this analyzer existed.
func realDefectClass(err error) bool {
	return err == ErrAbandoned // want `sentinel error ErrAbandoned compared with ==; use errors.Is`
}

func compareNeq(err error) bool {
	return err != ErrClosed // want `sentinel error ErrClosed compared with !=`
}

func crossPackage(err error) bool {
	return err == io.EOF // want `sentinel error EOF compared with ==`
}

func switchCase(err error) int {
	switch err {
	case ErrClosed: // want `sentinel error ErrClosed used as switch case`
		return 1
	case nil:
		return 0
	}
	return 2
}

func badWrap(err error) error {
	return fmt.Errorf("compact shard: %v", err) // want `fmt.Errorf formats an error without %w`
}

func badWrapStringed(err error) error {
	return fmt.Errorf("compact shard: %s", err) // want `fmt.Errorf formats an error without %w`
}

// The good cases: errors.Is, plain %w, and a deliberate mixed wrap
// (one %w plus a %v for a secondary cause) all pass.
func goodIs(err error) bool      { return errors.Is(err, ErrAbandoned) }
func goodWrap(err error) error   { return fmt.Errorf("compact shard: %w", err) }
func goodMixed(a, b error) error { return fmt.Errorf("%w (cause: %v)", a, b) }
func goodNil(err error) bool     { return err == nil }
func goodNonError(k int) error {
	if k > 0 {
		return fmt.Errorf("k too large: %d", k)
	}
	return nil
}
