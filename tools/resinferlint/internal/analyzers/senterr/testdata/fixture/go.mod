module sentfix

go 1.22
