// Package checker runs analyzers over loaded packages and collects
// ordered diagnostics, mirroring the x/tools multichecker driver.
package checker

import (
	"fmt"
	"go/token"
	"sort"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/load"
)

// Diagnostic is a positioned finding attributed to an analyzer.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns diagnostics
// sorted by file, line, column, then analyzer name.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Analyzer: name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
