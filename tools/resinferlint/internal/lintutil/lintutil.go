// Package lintutil holds small type/AST helpers shared by the
// resinferlint analyzers.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc returns the statically-resolved function or method called
// by call, or nil for builtins, conversions, and dynamic calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsConversion reports whether call is a type conversion T(x).
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// Deref returns the pointee type if t is a pointer, else t.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf unwraps aliases and pointers to reach a named type.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(Deref(t))
	n, _ := t.(*types.Named)
	return n
}

// PkgMatches reports whether pkg's import path equals path or ends in
// "/"+path — so "internal/fault" matches both "resinfer/internal/fault"
// and a fixture module's "lintfixture/internal/fault".
func PkgMatches(pkg *types.Package, path string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// IsErrorType reports whether t is the error interface or a type that
// implements it (by value or by pointer).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
