// Package load type-checks Go packages without golang.org/x/tools.
//
// Strategy: `go list -export -deps -json` enumerates the target
// packages and every dependency, and — crucially — emits a compiled
// export-data file for each dependency. Target packages are then
// parsed from source and type-checked with go/types, resolving imports
// through importer.ForCompiler's lookup hook against those export
// files. This works fully offline, and it respects build tags and
// GOOS/GOARCH because `go list` inherits the environment and -tags.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// TypeErrors holds any type-check errors. Analyzers still run on
	// packages with errors (best effort), but the driver reports them.
	TypeErrors []error
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Config parameterizes a Load call.
type Config struct {
	// Dir is the working directory for the `go` invocations
	// (typically the module root). Empty means the process cwd.
	Dir string
	// BuildTags is passed through as -tags.
	BuildTags string
	// Env, if non-nil, replaces the environment for `go` invocations
	// (use to cross-analyze, e.g. GOARCH=arm64).
	Env []string
}

// Load enumerates patterns with `go list` and type-checks every
// matched (non-dep-only) package from source.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if cfg.BuildTags != "" {
		args = append(args, "-tags", cfg.BuildTags)
	}
	args = append(args, patterns...)
	out, err := runGo(cfg, args...)
	if err != nil {
		return nil, err
	}

	var targets []*listPackage
	exportFile := map[string]string{} // import path -> export data file
	importMap := map[string]string{}  // source import path -> resolved path
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %w", err)
		}
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
		for src, resolved := range lp.ImportMap {
			importMap[src] = resolved
		}
		if !lp.DepOnly {
			if lp.Error != nil && len(lp.GoFiles) == 0 {
				return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			targets = append(targets, lp)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}

	goarch := goEnv(cfg, "GOARCH")
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if resolved, ok := importMap[path]; ok {
			path = resolved
		}
		f, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, lp, imp, goarch)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, lp *listPackage, imp types.Importer, goarch string) (*Package, error) {
	var files []*ast.File
	names := append(append([]string{}, lp.GoFiles...), lp.CgoFiles...)
	for _, name := range names {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", goarch),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		TypeErrors: terrs,
	}, nil
}

func runGo(cfg Config, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	if cfg.Env != nil {
		cmd.Env = cfg.Env
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go %s: %s", strings.Join(args, " "), msg)
	}
	return stdout.Bytes(), nil
}

func goEnv(cfg Config, key string) string {
	out, err := runGo(cfg, "env", key)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
