// Command resinferlint is resinfer's custom vettool: a multichecker
// that enforces the repository's concurrency, zero-allocation, and
// fault-injection invariants statically.
//
// Usage:
//
//	go run ./tools/resinferlint [-tags tags] [-run a,b] [packages...]
//
// Patterns default to ./... relative to the current directory. The
// tool exits 0 when no findings are reported, 1 when there are
// findings, and 2 on load/internal errors. GOOS/GOARCH and -tags are
// honored, so CI can lint every build-matrix configuration.
//
// Analyzers:
//
//	noalloc     //resinfer:noalloc functions must not heap-allocate
//	lockorder   mut.mu -> shardSeg.mu ordering; WAL never under segment locks
//	atomicfield sync/atomic fields used atomically everywhere; no lock copies
//	faultsite   fault.Check sites must come from the central registry
//	senterr     sentinel errors use errors.Is and %w, never ==
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"resinfer/tools/resinferlint/internal/analysis"
	"resinfer/tools/resinferlint/internal/analyzers/atomicfield"
	"resinfer/tools/resinferlint/internal/analyzers/faultsite"
	"resinfer/tools/resinferlint/internal/analyzers/lockorder"
	"resinfer/tools/resinferlint/internal/analyzers/noalloc"
	"resinfer/tools/resinferlint/internal/analyzers/senterr"
	"resinfer/tools/resinferlint/internal/checker"
	"resinfer/tools/resinferlint/internal/load"
)

var all = []*analysis.Analyzer{
	atomicfield.Analyzer,
	faultsite.Analyzer,
	lockorder.Analyzer,
	noalloc.Analyzer,
	senterr.Analyzer,
}

func main() {
	tags := flag.String("tags", "", "build tags, passed to go list")
	run := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: resinferlint [-tags tags] [-run a,b] [packages...]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := all
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "resinferlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Load(load.Config{BuildTags: *tags}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resinferlint: %v\n", err)
		os.Exit(2)
	}
	loadErrs := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "resinferlint: %s: type error: %v\n", pkg.ImportPath, terr)
			loadErrs++
		}
	}
	if loadErrs > 0 {
		os.Exit(2)
	}

	diags, err := checker.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resinferlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
