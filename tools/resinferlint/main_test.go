package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodes builds the multichecker and proves the acceptance
// contract: a tree containing any of the defect classes this PR fixed
// (testdata/broken re-creates them in miniature) fails the build with
// exit 1 and named findings, and the fixed tree (testdata/clean) exits
// 0 silently.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := filepath.Join(t.TempDir(), "resinferlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	run := func(dir string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, "./...")
		cmd.Dir = dir
		cmd.Env = append(os.Environ(), "GOWORK=off")
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s in %s: %v\n%s", bin, dir, err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := run("testdata/broken")
	if code != 1 {
		t.Fatalf("broken tree: exit %d, want 1\n%s", code, out)
	}
	for _, wanted := range []string{
		"senterr: sentinel error errFanAbandoned compared with ==",
		"senterr: fmt.Errorf formats an error without %w",
		"noalloc: make allocates",
	} {
		if !strings.Contains(out, wanted) {
			t.Errorf("broken tree output missing %q\n%s", wanted, out)
		}
	}

	out, code = run("testdata/clean")
	if code != 0 {
		t.Fatalf("clean tree: exit %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean tree: expected no output, got\n%s", out)
	}
}
