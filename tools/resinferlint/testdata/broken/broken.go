// Package brokenfix holds, in miniature, the invariant violations this
// PR fixed in the real tree. The multichecker must exit non-zero on
// it; testdata/clean is the same logic with the fixes applied and must
// exit zero. TestExitCodes drives both, which is the CI-verifiable
// proof that reverting an in-PR fix turns the build red.
package brokenfix

import (
	"errors"
	"fmt"
)

var errFanAbandoned = errors.New("every shard abandoned at deadline")

// abandonCheck is sharded.go's pre-fix comparison, verbatim.
func abandonCheck(err error) bool {
	return err == errFanAbandoned
}

func wrapShardErr(s int, err error) error {
	return fmt.Errorf("shard %d: %v", s, err)
}

// merge is annotated but allocates its dedup map per call — the shape
// the fan-out scratch pool exists to prevent.
//
//resinfer:noalloc
func merge(ids []int) int {
	seen := make(map[int]bool, len(ids))
	kept := 0
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			kept++
		}
	}
	return kept
}
