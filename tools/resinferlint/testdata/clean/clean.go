// Package cleanfix is testdata/broken with every finding fixed; the
// multichecker must exit zero on it.
package cleanfix

import (
	"errors"
	"fmt"
)

var errFanAbandoned = errors.New("every shard abandoned at deadline")

func abandonCheck(err error) bool {
	return errors.Is(err, errFanAbandoned)
}

func wrapShardErr(s int, err error) error {
	return fmt.Errorf("shard %d: %w", s, err)
}

//resinfer:noalloc
func merge(scratch map[int]bool, ids []int) int {
	clear(scratch)
	kept := 0
	for _, id := range ids {
		if !scratch[id] {
			scratch[id] = true
			kept++
		}
	}
	return kept
}
