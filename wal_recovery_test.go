package resinfer

// Crash-recovery pin-downs for the write-ahead log: an index recovered
// from its WAL must be bit-identical to one that never crashed — same
// IDs, same distances, same order — including when the final record is
// torn (dropped, not fatal), when recovery starts from a compaction
// checkpoint snapshot, and when it starts from a user-saved snapshot
// with only the log tail replayed.

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// assertIdentical requires two searches to agree exactly — IDs and
// distances in the same order (recovered state must be bit-identical,
// so even tie order matches).
func assertIdentical(t testing.TB, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d hits, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("hit %d: %+v, want %+v\n got: %v\nwant: %v", i, got[i], want[i], got, want)
		}
	}
}

// mutatePair applies one scripted mutation step to both indexes and the
// model, asserting the WAL-backed index acknowledges it identically.
type mutatePair struct {
	t     *testing.T
	a, b  *MutableIndex
	model liveModel
	rng   *rand.Rand
	ups   int
	dels  int
}

func (p *mutatePair) add() {
	v := randRows(p.rng, 1, mutDim)[0]
	ida, err := p.a.Add(v)
	if err != nil {
		p.t.Fatal(err)
	}
	idb, err := p.b.Add(v)
	if err != nil {
		p.t.Fatal(err)
	}
	if ida != idb {
		p.t.Fatalf("diverging auto IDs: %d vs %d", ida, idb)
	}
	p.model[ida] = v
	p.ups++
}

func (p *mutatePair) upsert(id int) {
	v := randRows(p.rng, 1, mutDim)[0]
	if _, err := p.a.Upsert(id, v); err != nil {
		p.t.Fatal(err)
	}
	if _, err := p.b.Upsert(id, v); err != nil {
		p.t.Fatal(err)
	}
	p.model[id] = v
	p.ups++
}

func (p *mutatePair) del(id int) {
	oka, err := p.a.Delete(id)
	if err != nil {
		p.t.Fatal(err)
	}
	okb, err := p.b.Delete(id)
	if err != nil {
		p.t.Fatal(err)
	}
	if oka != okb {
		p.t.Fatalf("diverging delete(%d): %v vs %v", id, oka, okb)
	}
	if oka {
		delete(p.model, id)
		p.dels++
	}
}

// script runs a deterministic mixed mutation stream.
func (p *mutatePair) script(steps int) {
	for i := 0; i < steps; i++ {
		switch i % 5 {
		case 0, 1:
			p.add()
		case 2:
			p.upsert(p.rng.Intn(100)) // replace / resurrect a low ID
		case 3:
			p.del(p.rng.Intn(150))
		case 4:
			p.upsert(200 + p.rng.Intn(200)) // mix of fresh explicit IDs
		}
	}
}

func compareAll(t *testing.T, rng *rand.Rand, rec, control *MutableIndex, model liveModel) {
	t.Helper()
	if rec.Len() != control.Len() {
		t.Fatalf("Len %d, control %d", rec.Len(), control.Len())
	}
	for _, q := range randRows(rng, 20, mutDim) {
		got, err := rec.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := control.Search(q, 10, Exact, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, got, want)
		assertExact(t, got, model.exactTopK(q, 10, L2))
	}
}

// TestWALCrashRecoveryGolden is the acceptance pin-down: under
// SyncAlways every acknowledged mutation survives a crash (the index is
// dropped without Save or Close), and the recovered index is
// bit-identical to a control that never crashed.
func TestWALCrashRecoveryGolden(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(77))
	data := randRows(rng, 200, mutDim)
	wopts := &MutableOptions{DisableAutoCompact: true, WALDir: dir, WALSync: WALSyncAlways()}
	copts := &MutableOptions{DisableAutoCompact: true}

	mx, err := NewMutable(data, Flat, 3, wopts)
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewMutable(data, Flat, 3, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	model := liveModel{}
	for i, v := range data {
		model[i] = v
	}
	p := &mutatePair{t: t, a: mx, b: control, model: model, rng: rng}
	p.script(120)

	// Crash: abandon mx without Save or Close, rebuild from the same
	// deterministic data, and let the WAL replay bring it back.
	rec, err := NewMutable(data, Flat, 3, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	wr := rec.WALRecovery()
	if !wr.Enabled {
		t.Fatal("recovery reports WAL disabled")
	}
	if wr.Upserts != p.ups || wr.Deletes != p.dels {
		t.Fatalf("replayed %d upserts / %d deletes, want %d / %d",
			wr.Upserts, wr.Deletes, p.ups, p.dels)
	}
	compareAll(t, rng, rec, control, model)

	// The recovered index keeps logging: one more mutation round-trips
	// through a second crash.
	id, err := rec.Add(randRows(rng, 1, mutDim)[0])
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := NewMutable(data, Flat, 3, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if rec2.Len() != control.Len()+1 {
		t.Fatalf("second recovery lost the post-recovery insert (len %d, want %d)",
			rec2.Len(), control.Len()+1)
	}
	if ok, _ := rec2.Delete(id); !ok {
		t.Fatalf("post-recovery id %d not live after second recovery", id)
	}
}

// TestWALTornFinalRecord tears the last record mid-write (a crash
// artifact): recovery must drop it — losing exactly the unacknowledged
// tail mutation — and succeed.
func TestWALTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	data := randRows(rng, 150, mutDim)
	wopts := &MutableOptions{DisableAutoCompact: true, WALDir: dir, WALSync: WALSyncNone()}

	mx, err := NewMutable(data, Flat, 2, wopts)
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewMutable(data, Flat, 2, &MutableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	model := liveModel{}
	for i, v := range data {
		model[i] = v
	}
	p := &mutatePair{t: t, a: mx, b: control, model: model, rng: rng}
	p.script(40)

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	sort.Strings(segs)
	before, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// The final mutation goes to mx only — and is then torn in half, so
	// it must NOT survive; control never sees it.
	if _, err := mx.Add(randRows(rng, 1, mutDim)[0]); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], before.Size()+(after.Size()-before.Size())/2); err != nil {
		t.Fatal(err)
	}

	rec, err := NewMutable(data, Flat, 2, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	wr := rec.WALRecovery()
	if wr.TornSegments != 1 {
		t.Fatalf("torn segments = %d, want 1", wr.TornSegments)
	}
	if wr.Upserts != p.ups || wr.Deletes != p.dels {
		t.Fatalf("replayed %d/%d, want %d/%d (torn record must not count)",
			wr.Upserts, wr.Deletes, p.ups, p.dels)
	}
	compareAll(t, rng, rec, control, model)
}

// TestWALCheckpointRecovery exercises the compaction checkpoint: after
// Compact, the WAL directory holds a snapshot and a trimmed log, a
// rebuild over it is refused, and RecoverMutable restores snapshot +
// tail exactly.
func TestWALCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	data := randRows(rng, 180, mutDim)
	wopts := &MutableOptions{DisableAutoCompact: true, WALDir: dir, WALSync: WALSyncNone()}

	mx, err := NewMutable(data, Flat, 3, wopts)
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewMutable(data, Flat, 3, &MutableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	model := liveModel{}
	for i, v := range data {
		model[i] = v
	}
	p := &mutatePair{t: t, a: mx, b: control, model: model, rng: rng}
	p.script(80)

	// Compact both: mx checkpoints its state into the WAL dir and trims
	// the log; control just folds segments (results stay equal).
	if _, err := mx.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := control.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walCheckpointFile)); err != nil {
		t.Fatalf("checkpoint snapshot missing after Compact: %v", err)
	}
	st := mx.MutationStats()
	if st.WALCheckpoints == 0 || st.WALCheckpointErrors != 0 {
		t.Fatalf("checkpoint counters: %+v", st)
	}

	// Tail churn after the checkpoint — only this much should replay.
	preUps, preDels := p.ups, p.dels
	p.script(25)
	tailUps, tailDels := p.ups-preUps, p.dels-preDels

	// Rebuilding over a directory with durable state is refused.
	if _, err := NewMutable(data, Flat, 3, wopts); err == nil {
		t.Fatal("NewMutable over a checkpointed WAL dir must refuse")
	}

	rec, found, err := RecoverMutable(wopts)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("RecoverMutable did not find the checkpoint")
	}
	defer rec.Close()
	wr := rec.WALRecovery()
	if wr.Snapshot == "" {
		t.Fatal("recovery did not report its snapshot source")
	}
	if wr.Upserts != tailUps || wr.Deletes != tailDels {
		t.Fatalf("replayed %d upserts / %d deletes, want tail-only %d / %d",
			wr.Upserts, wr.Deletes, tailUps, tailDels)
	}
	compareAll(t, rng, rec, control, model)

	// Trimming bounds the directory: everything before the last
	// checkpoint is gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) > 3 {
		t.Fatalf("log not trimmed: %d segments remain (%v)", len(segs), segs)
	}
}

// TestWALReplayOntoSavedSnapshot pins the LoadMutable path: records
// newer than a user-written snapshot's applied-LSN header replay onto
// the loaded index; older ones are skipped.
func TestWALReplayOntoSavedSnapshot(t *testing.T) {
	walDir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "snapshot.strm")
	rng := rand.New(rand.NewSource(21))
	data := randRows(rng, 160, mutDim)
	wopts := &MutableOptions{DisableAutoCompact: true, WALDir: walDir, WALSync: WALSyncNone()}

	mx, err := NewMutable(data, Flat, 2, wopts)
	if err != nil {
		t.Fatal(err)
	}
	control, err := NewMutable(data, Flat, 2, &MutableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	model := liveModel{}
	for i, v := range data {
		model[i] = v
	}
	p := &mutatePair{t: t, a: mx, b: control, model: model, rng: rng}
	p.script(50)
	if err := mx.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	preUps, preDels := p.ups, p.dels
	p.script(30)

	rec, err := LoadMutableFile(snap, wopts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	wr := rec.WALRecovery()
	if wr.Upserts != p.ups-preUps || wr.Deletes != p.dels-preDels {
		t.Fatalf("replayed %d/%d, want tail-only %d/%d",
			wr.Upserts, wr.Deletes, p.ups-preUps, p.dels-preDels)
	}
	compareAll(t, rng, rec, control, model)
}

// TestMutationValidation pins the scanRow boundary checks: non-finite
// components and wrong dimensionality are ErrInvalidVector; mutations on
// an immutable index are ErrImmutable.
func TestMutationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randRows(rng, 60, mutDim)
	mx, err := NewMutable(data, Flat, 2, &MutableOptions{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	bad := make([]float32, mutDim)
	nan := float32(0)
	nan /= nan // NaN without importing math
	bad[3] = nan
	if _, err := mx.Add(bad); !errors.Is(err, ErrInvalidVector) {
		t.Fatalf("Add(NaN) = %v, want ErrInvalidVector", err)
	}
	zero := float32(0)
	bad[3] = 1 / zero // +Inf
	if _, err := mx.Upsert(5, bad); !errors.Is(err, ErrInvalidVector) {
		t.Fatalf("Upsert(+Inf) = %v, want ErrInvalidVector", err)
	}
	if _, err := mx.Add(make([]float32, mutDim+1)); !errors.Is(err, ErrInvalidVector) {
		t.Fatalf("Add(wrong dim) = %v, want ErrInvalidVector", err)
	}
	if mx.Len() != len(data) {
		t.Fatalf("invalid vectors mutated the index: len %d", mx.Len())
	}

	sx, err := NewSharded(data, Flat, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sx.Add(data[0]); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Add on immutable = %v, want ErrImmutable", err)
	}
	if _, err := sx.Delete(0); !errors.Is(err, ErrImmutable) {
		t.Fatalf("Delete on immutable = %v, want ErrImmutable", err)
	}
}
